//! The CellTree (Section 4 of the paper).
//!
//! The CellTree incrementally maintains the arrangement of the hyperplanes
//! inserted so far.  It is a binary tree: the root corresponds to the whole
//! (transformed) preference space, and every inserted hyperplane either
//!
//! * covers a node entirely on one side — the corresponding halfspace is
//!   appended to the node's **cover set** (cases I / II of the insertion
//!   algorithm), or
//! * cuts through a leaf — the leaf is **split** into two children whose
//!   edges are labelled with the two halfspaces (case III).
//!
//! Nodes never store their exact geometry.  A node is implicitly the
//! intersection of the halfspaces labelling the edges on its root path, its
//! own cover set, and the cover sets of its ancestors; by Lemma 2 only the
//! *edge labels* can bound the node, so feasibility tests (LP, Section 4.2)
//! use the edge labels only, which is what makes them cheap.
//!
//! The rank of a node is one plus the number of positive halfspaces among its
//! edge labels and (own + ancestor) cover sets (Lemma 1).  Nodes whose rank
//! exceeds `k` are eliminated together with their subtrees.

use crate::hyperplanes::HyperplaneStore;
use crate::stats::QueryStats;
use kspr_geometry::{ConstraintSystem, Halfspace, PreferenceSpace, Sign};
use kspr_lp::{interior_point, LinearConstraint};
use std::cell::RefCell;
use std::collections::HashSet;

/// One node of the CellTree.
#[derive(Debug, Clone)]
pub struct CellNode {
    /// Parent node index (`None` for the root).
    pub parent: Option<usize>,
    /// Halfspace labelling the edge from the parent to this node.
    pub edge: Option<Halfspace>,
    /// Cover set: halfspaces that fully cover this node and were inserted
    /// after the node was created.
    pub cover: Vec<Halfspace>,
    /// Number of positive halfspaces in `cover` (cached).
    pos_cover: usize,
    /// Children `(negative side, positive side)` if the node has been split.
    pub children: Option<(usize, usize)>,
    /// True once the node (and implicitly its subtree) has been pruned.
    pub eliminated: bool,
    /// True once the node has been reported as part of the kSPR result.
    pub reported: bool,
    /// True once LP-CTA has computed look-ahead rank bounds for this leaf.
    pub bounds_checked: bool,
    /// Cached interior witness point (Section 4.3.2).
    pub witness: Option<Vec<f64>>,
}

impl CellNode {
    fn new(parent: Option<usize>, edge: Option<Halfspace>) -> Self {
        Self {
            parent,
            edge,
            cover: Vec::new(),
            pos_cover: 0,
            children: None,
            eliminated: false,
            reported: false,
            bounds_checked: false,
            witness: None,
        }
    }

    /// Number of positive halfspaces contributed by this node itself
    /// (its edge label plus its cover set).
    fn own_positives(&self) -> usize {
        let edge_pos = usize::from(matches!(
            self.edge,
            Some(Halfspace {
                sign: Sign::Positive,
                ..
            })
        ));
        edge_pos + self.pos_cover
    }

    /// True iff the node is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.children.is_none()
    }
}

/// The incremental arrangement index of Section 4.
#[derive(Debug, Clone)]
pub struct CellTree {
    nodes: Vec<CellNode>,
    root: usize,
    space: PreferenceSpace,
    boundary: Vec<LinearConstraint>,
    k: usize,
    use_lemma2: bool,
    use_witness: bool,
    /// Live-leaf index: candidate leaves for [`CellTree::promising_leaves`].
    ///
    /// Every leaf enters exactly once (at creation); entries whose node has
    /// since been split, reported, eliminated or buried under an eliminated
    /// ancestor are lazily dropped on the next `promising_leaves` call.  This
    /// keeps the per-round cost proportional to the number of *candidate*
    /// leaves instead of the O(total nodes) arena scan it replaces.  Interior
    /// mutability (`RefCell`) lets the read path self-compact; the tree is
    /// per-query state and never crosses threads.
    live_leaves: RefCell<Vec<usize>>,
}

impl CellTree {
    /// Creates a CellTree over `space` for a query with effective rank
    /// threshold `k`.
    pub fn new(space: PreferenceSpace, k: usize, use_lemma2: bool, use_witness: bool) -> Self {
        let boundary = space.boundary_constraints();
        Self {
            nodes: vec![CellNode::new(None, None)],
            root: 0,
            space,
            boundary,
            k,
            use_lemma2,
            use_witness,
            live_leaves: RefCell::new(vec![0]),
        }
    }

    /// The rank threshold the tree prunes against.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The preference space the tree partitions.
    pub fn space(&self) -> &PreferenceSpace {
        &self.space
    }

    /// Index of the root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Total number of nodes created so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node.
    pub fn node(&self, idx: usize) -> &CellNode {
        &self.nodes[idx]
    }

    /// True once the root has been eliminated (the whole preference space is
    /// pruned, so the kSPR result is empty).
    pub fn is_exhausted(&self) -> bool {
        self.nodes[self.root].eliminated
    }

    /// Rank of a node: 1 + positive halfspaces on its root path (edge labels
    /// and cover sets of the node and all ancestors) — Lemma 1.
    pub fn rank(&self, idx: usize) -> usize {
        let mut positives = 0;
        let mut cur = Some(idx);
        while let Some(i) = cur {
            positives += self.nodes[i].own_positives();
            cur = self.nodes[i].parent;
        }
        positives + 1
    }

    /// Marks a leaf as reported (part of the kSPR result); it is ignored by
    /// all subsequent operations.
    pub fn report(&mut self, idx: usize) {
        self.nodes[idx].reported = true;
    }

    /// Eliminates a node (and implicitly its subtree).
    pub fn eliminate(&mut self, idx: usize) {
        self.nodes[idx].eliminated = true;
        self.propagate_elimination(idx);
    }

    /// Marks a leaf as having had its look-ahead bounds computed.
    pub fn mark_bounds_checked(&mut self, idx: usize) {
        self.nodes[idx].bounds_checked = true;
    }

    /// When both children of a parent are eliminated (or reported) the parent
    /// itself can be eliminated, which propagates further up.
    fn propagate_elimination(&mut self, idx: usize) {
        let mut cur = self.nodes[idx].parent;
        while let Some(p) = cur {
            let (l, r) = match self.nodes[p].children {
                Some(c) => c,
                None => break,
            };
            let closed = |n: &CellNode| n.eliminated || n.reported;
            if closed(&self.nodes[l]) && closed(&self.nodes[r]) && !self.nodes[p].eliminated {
                self.nodes[p].eliminated = true;
                cur = self.nodes[p].parent;
            } else {
                break;
            }
        }
    }

    /// The halfspaces labelling the edges on the root path of `idx`
    /// (the only halfspaces that can bound the node — Lemma 2).
    pub fn path_halfspaces(&self, idx: usize) -> Vec<Halfspace> {
        let mut out = Vec::new();
        let mut cur = Some(idx);
        while let Some(i) = cur {
            if let Some(edge) = self.nodes[i].edge {
                out.push(edge);
            }
            cur = self.nodes[i].parent;
        }
        out.reverse();
        out
    }

    /// The full halfspace set of a node: edge labels plus the cover sets of
    /// the node and all its ancestors.  Every hyperplane inserted while the
    /// node was live appears exactly once in this set.
    pub fn full_halfspaces(&self, idx: usize) -> Vec<Halfspace> {
        let mut out = Vec::new();
        let mut cur = Some(idx);
        while let Some(i) = cur {
            if let Some(edge) = self.nodes[i].edge {
                out.push(edge);
            }
            out.extend(self.nodes[i].cover.iter().copied());
            cur = self.nodes[i].parent;
        }
        out
    }

    /// All live, not-yet-reported leaves whose rank does not exceed `k`
    /// ("promising cells" in the paper's terminology).
    ///
    /// Served from the live-leaf index: instead of scanning the whole node
    /// arena, only current candidates are examined, and candidates that died
    /// since the last call (split, reported, eliminated, or under an
    /// eliminated ancestor) are permanently dropped along the way.
    pub fn promising_leaves(&self) -> Vec<usize> {
        let mut candidates = self.live_leaves.borrow_mut();
        candidates.retain(|&i| {
            let n = &self.nodes[i];
            n.is_leaf() && !n.eliminated && !n.reported && !self.ancestor_closed(i)
        });
        // Rank filtering is *not* a drop criterion: it is re-evaluated per
        // call (rank only ever grows, but such leaves are eliminated by the
        // next insertion touching them, so keeping them here is cheap).
        candidates
            .iter()
            .copied()
            .filter(|&i| self.rank(i) <= self.k)
            .collect()
    }

    /// True if any ancestor of `idx` is eliminated (the node is then dead even
    /// if its own flag was never set).
    fn ancestor_closed(&self, idx: usize) -> bool {
        let mut cur = self.nodes[idx].parent;
        while let Some(i) = cur {
            if self.nodes[i].eliminated {
                return true;
            }
            cur = self.nodes[i].parent;
        }
        false
    }

    /// The cached witness point of a node, if any.
    pub fn witness(&self, idx: usize) -> Option<&[f64]> {
        self.nodes[idx].witness.as_deref()
    }

    /// A constraint system describing the cell of node `idx`: the space
    /// boundary plus the bounding (edge-label) halfspaces.
    pub fn cell_system(&self, idx: usize, store: &HyperplaneStore) -> ConstraintSystem {
        let mut sys = ConstraintSystem::new(self.space);
        for h in self.path_halfspaces(idx) {
            sys.push_halfspace(store.plane(h.plane), h.sign);
        }
        sys
    }

    /// Inserts hyperplane `plane` (an index into `store`) into the tree.
    ///
    /// `dominator_planes` contains the indices of already-inserted hyperplanes
    /// whose source records dominate the record of `plane`; when any of them
    /// contributes a *negative* halfspace to a node, the new hyperplane's
    /// negative halfspace is guaranteed to cover that node too (the P-CTA
    /// optimization backed by Lemma 4/5).  Pass an empty set to disable the
    /// optimization (plain CTA).
    pub fn insert(
        &mut self,
        store: &HyperplaneStore,
        plane: usize,
        dominator_planes: &HashSet<usize>,
        stats: &mut QueryStats,
    ) {
        let mut path_strict: Vec<LinearConstraint> = Vec::new();
        let mut cover_strict: Vec<LinearConstraint> = Vec::new();
        self.insert_rec(
            self.root,
            store,
            plane,
            dominator_planes,
            0,
            false,
            &mut path_strict,
            &mut cover_strict,
            stats,
        );
        stats.celltree_nodes = self.nodes.len();
    }

    /// Recursive insertion.  `acc_pos` counts positive halfspaces contributed
    /// by the ancestors of `idx`; `dominator_negative` is true when some
    /// dominator of the incoming record already contributes a negative
    /// halfspace on the path.
    #[allow(clippy::too_many_arguments)]
    fn insert_rec(
        &mut self,
        idx: usize,
        store: &HyperplaneStore,
        plane: usize,
        dominator_planes: &HashSet<usize>,
        acc_pos: usize,
        dominator_negative: bool,
        path_strict: &mut Vec<LinearConstraint>,
        cover_strict: &mut Vec<LinearConstraint>,
        stats: &mut QueryStats,
    ) {
        if self.nodes[idx].eliminated || self.nodes[idx].reported {
            return;
        }
        // If both children are already closed, close this node as well
        // (Algorithm 1, line 12).
        if let Some((l, r)) = self.nodes[idx].children {
            let closed = |n: &CellNode| n.eliminated || n.reported;
            if closed(&self.nodes[l]) && closed(&self.nodes[r]) {
                self.nodes[idx].eliminated = true;
                return;
            }
        }

        let rank_here = acc_pos + self.nodes[idx].own_positives() + 1;
        if rank_here > self.k {
            self.nodes[idx].eliminated = true;
            return;
        }

        // Dominance shortcut (P-CTA): a processed dominator already confines
        // this node to its negative halfspace, so the new record's negative
        // halfspace covers the node as well.
        let mut dominator_negative = dominator_negative
            || self.halfspace_from_dominator(
                &self.nodes[idx].edge.into_iter().collect::<Vec<_>>(),
                dominator_planes,
            )
            || self.halfspace_from_dominator(&self.nodes[idx].cover, dominator_planes);
        if dominator_negative {
            self.nodes[idx].cover.push(Halfspace::negative(plane));
            return;
        }

        // Witness-based shortcuts (Section 4.3.2).
        let mut case1_possible = true; // N ∩ h⁻ = ∅ (node inside h⁺)
        let mut case2_possible = true; // N ∩ h⁺ = ∅ (node inside h⁻)
        if self.use_witness {
            if let Some(w) = &self.nodes[idx].witness {
                match store.side(plane, w) {
                    Some(Sign::Negative) => {
                        case1_possible = false;
                        stats.witness_hits += 1;
                    }
                    Some(Sign::Positive) => {
                        case2_possible = false;
                        stats.witness_hits += 1;
                    }
                    None => {}
                }
            }
        }

        // Witness points discovered by the feasibility tests below; reused to
        // seed the children if the node ends up split.
        let mut witness_negative: Option<Vec<f64>> = None;
        let mut witness_positive: Option<Vec<f64>> = None;

        if case1_possible {
            match self.feasibility_test(
                idx,
                store,
                plane,
                Sign::Negative,
                path_strict,
                cover_strict,
                stats,
            ) {
                None => {
                    // Case I: the node lies entirely inside h⁺.
                    self.nodes[idx].cover.push(Halfspace::positive(plane));
                    self.nodes[idx].pos_cover += 1;
                    if rank_here + 1 > self.k {
                        self.nodes[idx].eliminated = true;
                    }
                    return;
                }
                Some(w) => {
                    if self.nodes[idx].witness.is_none() {
                        self.nodes[idx].witness = Some(w.clone());
                    }
                    witness_negative = Some(w);
                }
            }
        }
        if case2_possible {
            match self.feasibility_test(
                idx,
                store,
                plane,
                Sign::Positive,
                path_strict,
                cover_strict,
                stats,
            ) {
                None => {
                    // Case II: the node lies entirely inside h⁻.
                    self.nodes[idx].cover.push(Halfspace::negative(plane));
                    return;
                }
                Some(w) => {
                    if self.nodes[idx].witness.is_none() {
                        self.nodes[idx].witness = Some(w.clone());
                    }
                    witness_positive = Some(w);
                }
            }
        }

        // Case III: the hyperplane cuts through the node.
        if self.nodes[idx].is_leaf() {
            let neg_child = self.nodes.len();
            let mut neg_node = CellNode::new(Some(idx), Some(Halfspace::negative(plane)));
            neg_node.witness = witness_negative;
            self.nodes.push(neg_node);
            let pos_child = self.nodes.len();
            let mut pos_node = CellNode::new(Some(idx), Some(Halfspace::positive(plane)));
            pos_node.witness = witness_positive;
            self.nodes.push(pos_node);
            self.nodes[idx].children = Some((neg_child, pos_child));
            // Register the new leaves with the live-leaf index (the split
            // parent is lazily dropped on the next `promising_leaves` call).
            self.live_leaves.borrow_mut().extend([neg_child, pos_child]);
            // The positive child's rank is one higher; prune it immediately if
            // it already exceeds k.
            if rank_here + 1 > self.k {
                self.nodes[pos_child].eliminated = true;
            }
        } else {
            let (l, r) = self.nodes[idx]
                .children
                .expect("internal node has children");
            // The dominance flag may become true deeper down; recompute per child.
            dominator_negative = false;
            let acc_here = acc_pos + self.nodes[idx].own_positives();
            if !self.use_lemma2 {
                for h in self.nodes[idx].cover.clone() {
                    cover_strict.push(store.constraint(h, true));
                }
            }
            let cover_pushed = if self.use_lemma2 {
                0
            } else {
                self.nodes[idx].cover.len()
            };
            for child in [l, r] {
                let edge = self.nodes[child].edge.expect("non-root node has an edge");
                path_strict.push(store.constraint(edge, true));
                self.insert_rec(
                    child,
                    store,
                    plane,
                    dominator_planes,
                    acc_here,
                    dominator_negative,
                    path_strict,
                    cover_strict,
                    stats,
                );
                path_strict.pop();
            }
            for _ in 0..cover_pushed {
                cover_strict.pop();
            }
            // Bubble elimination up if both children got closed.
            let closed = |n: &CellNode| n.eliminated || n.reported;
            if closed(&self.nodes[l]) && closed(&self.nodes[r]) {
                self.nodes[idx].eliminated = true;
            }
        }
    }

    /// True iff any of `halves` is a negative halfspace produced by one of the
    /// dominator planes.
    fn halfspace_from_dominator(
        &self,
        halves: &[Halfspace],
        dominator_planes: &HashSet<usize>,
    ) -> bool {
        if dominator_planes.is_empty() {
            return false;
        }
        halves
            .iter()
            .any(|h| h.sign == Sign::Negative && dominator_planes.contains(&h.plane))
    }

    /// Runs the LP feasibility test "is `node ∩ (side of plane)` empty?"
    /// and returns a strictly interior witness if it is not.
    ///
    /// Constraints: the space boundary, the edge labels on the node's root
    /// path (always), the cover sets on the path (only when Lemma 2 is
    /// disabled), and the tested halfspace.
    #[allow(clippy::too_many_arguments)]
    fn feasibility_test(
        &self,
        _idx: usize,
        store: &HyperplaneStore,
        plane: usize,
        sign: Sign,
        path_strict: &[LinearConstraint],
        cover_strict: &[LinearConstraint],
        stats: &mut QueryStats,
    ) -> Option<Vec<f64>> {
        let extra = store.plane(plane).constraint(sign, true);
        let mut constraints =
            Vec::with_capacity(self.boundary.len() + path_strict.len() + cover_strict.len() + 1);
        constraints.extend_from_slice(&self.boundary);
        constraints.extend_from_slice(path_strict);
        if !self.use_lemma2 {
            constraints.extend_from_slice(cover_strict);
        }
        constraints.push(extra);
        stats.feasibility_tests += 1;
        stats.lp_constraints += path_strict.len()
            + if self.use_lemma2 {
                0
            } else {
                cover_strict.len()
            }
            + 1;
        interior_point(&constraints, self.space.work_dim()).map(|s| s.point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspr_geometry::PreferenceSpace;

    /// Builds the running example of Figures 1–4 of the paper: restaurants
    /// with (value, service, ambiance), focal record Kyma.
    fn demo() -> (HyperplaneStore, Vec<Vec<f64>>) {
        let space = PreferenceSpace::transformed(3);
        let focal = vec![5.0, 5.0, 7.0];
        let records = vec![
            vec![3.0, 8.0, 8.0], // r1 L'Entrecôte
            vec![9.0, 4.0, 4.0], // r2 Beirut Grill
            vec![8.0, 3.0, 4.0], // r3 El Coyote
            vec![4.0, 3.0, 6.0], // r4 La Braceria
        ];
        (HyperplaneStore::new(space, focal), records)
    }

    fn insert_all(k: usize) -> (CellTree, HyperplaneStore, Vec<Vec<f64>>, QueryStats) {
        let (mut store, records) = demo();
        let mut tree = CellTree::new(*store.space(), k, true, true);
        let mut stats = QueryStats::new();
        let empty = HashSet::new();
        for (i, r) in records.iter().enumerate() {
            let plane = store.add(i, r);
            tree.insert(&store, plane, &empty, &mut stats);
        }
        (tree, store, records, stats)
    }

    /// Oracle: rank of the focal record at working-space point `w`.
    fn rank_at(records: &[Vec<f64>], focal: &[f64], space: &PreferenceSpace, w: &[f64]) -> usize {
        let full = space.to_full_weight(w);
        let score = |r: &[f64]| -> f64 { r.iter().zip(&full).map(|(v, wi)| v * wi).sum() };
        let sp = score(focal);
        1 + records.iter().filter(|r| score(r) > sp).count()
    }

    #[test]
    fn root_starts_live_and_unsplit() {
        let space = PreferenceSpace::transformed(3);
        let tree = CellTree::new(space, 3, true, true);
        assert_eq!(tree.num_nodes(), 1);
        assert!(!tree.is_exhausted());
        assert_eq!(tree.rank(tree.root()), 1);
        assert_eq!(tree.promising_leaves(), vec![0]);
    }

    #[test]
    fn promising_leaves_have_correct_ranks() {
        let k = 3;
        let (tree, store, records, _) = insert_all(k);
        let focal = store.focal().to_vec();
        let space = *store.space();
        for leaf in tree.promising_leaves() {
            let leaf_rank = tree.rank(leaf);
            assert!(leaf_rank <= k);
            // The CellTree rank must equal the oracle rank at the witness (or
            // any interior point) of the leaf.
            let sys = tree.cell_system(leaf, &store);
            let w = sys
                .interior_point()
                .expect("promising leaf is non-empty")
                .point;
            assert_eq!(
                leaf_rank,
                rank_at(&records, &focal, &space, &w),
                "leaf {leaf}"
            );
        }
    }

    #[test]
    fn every_feasible_point_is_classified_consistently() {
        // Sample a grid of points; the union of promising leaves (rank <= k)
        // must contain exactly the points whose oracle rank is <= k.
        let k = 3;
        let (tree, store, records, _) = insert_all(k);
        let focal = store.focal().to_vec();
        let space = *store.space();
        let leaves = tree.promising_leaves();
        for a in 1..20 {
            for b in 1..(20 - a) {
                let w = vec![a as f64 / 20.0, b as f64 / 20.0];
                // Skip points (numerically) on a hyperplane: they belong to no
                // open cell and the oracle's strict comparison is ambiguous.
                let on_plane =
                    (0..store.len()).any(|i| store.plane(i).signed_distance(&w).abs() < 1e-6);
                if on_plane {
                    continue;
                }
                let oracle_in = rank_at(&records, &focal, &space, &w) <= k;
                let in_some_leaf = leaves
                    .iter()
                    .any(|&leaf| tree.cell_system(leaf, &store).contains(&w, 1e-9));
                assert_eq!(oracle_in, in_some_leaf, "w = {w:?}");
            }
        }
    }

    #[test]
    fn rank_one_pruning_eliminates_everything() {
        // With k = 1 and records that each beat the focal somewhere, large
        // parts of the tree get eliminated; the surviving leaves must still
        // be exactly the rank-1 cells.
        let (tree, store, records, _) = {
            let (mut store, records) = demo();
            let mut tree = CellTree::new(*store.space(), 1, true, true);
            let mut stats = QueryStats::new();
            let empty = HashSet::new();
            for (i, r) in records.iter().enumerate() {
                let plane = store.add(i, r);
                tree.insert(&store, plane, &empty, &mut stats);
            }
            (tree, store, records, stats)
        };
        let focal = store.focal().to_vec();
        let space = *store.space();
        for leaf in tree.promising_leaves() {
            let sys = tree.cell_system(leaf, &store);
            let w = sys.interior_point().unwrap().point;
            assert_eq!(rank_at(&records, &focal, &space, &w), 1);
        }
    }

    #[test]
    fn lemma2_and_witness_toggles_do_not_change_the_result() {
        let configs = [(true, true), (true, false), (false, true), (false, false)];
        let mut signatures = Vec::new();
        for (lemma2, witness) in configs {
            let (mut store, records) = demo();
            let mut tree = CellTree::new(*store.space(), 3, lemma2, witness);
            let mut stats = QueryStats::new();
            let empty = HashSet::new();
            for (i, r) in records.iter().enumerate() {
                let plane = store.add(i, r);
                tree.insert(&store, plane, &empty, &mut stats);
            }
            // Signature: sorted ranks of promising leaves plus classification
            // of a probe grid.
            let mut ranks: Vec<usize> = tree
                .promising_leaves()
                .iter()
                .map(|&l| tree.rank(l))
                .collect();
            ranks.sort_unstable();
            let mut grid = Vec::new();
            for a in 1..10 {
                for b in 1..(10 - a) {
                    let w = vec![a as f64 / 10.0, b as f64 / 10.0];
                    grid.push(
                        tree.promising_leaves()
                            .iter()
                            .any(|&l| tree.cell_system(l, &store).contains(&w, 1e-9)),
                    );
                }
            }
            signatures.push((ranks, grid));
        }
        assert!(signatures.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn witness_reuse_skips_feasibility_tests() {
        let (_, _, _, stats_with) = insert_all(3);
        let (mut store, records) = demo();
        let mut tree = CellTree::new(*store.space(), 3, true, false);
        let mut stats_without = QueryStats::new();
        let empty = HashSet::new();
        for (i, r) in records.iter().enumerate() {
            let plane = store.add(i, r);
            tree.insert(&store, plane, &empty, &mut stats_without);
        }
        assert!(stats_with.witness_hits > 0);
        assert_eq!(stats_without.witness_hits, 0);
        assert!(stats_with.feasibility_tests <= stats_without.feasibility_tests);
    }

    #[test]
    fn report_and_eliminate_propagate() {
        let (mut tree, ..) = insert_all(3);
        let leaves = tree.promising_leaves();
        assert!(!leaves.is_empty());
        for &leaf in &leaves {
            tree.report(leaf);
        }
        assert!(tree.promising_leaves().is_empty());
    }

    #[test]
    fn live_leaf_index_matches_full_arena_scan() {
        // Oracle: the O(nodes) scan the index replaced.
        fn scan(tree: &CellTree) -> Vec<usize> {
            (0..tree.num_nodes())
                .filter(|&i| {
                    let n = tree.node(i);
                    n.is_leaf() && !n.eliminated && !n.reported && {
                        let mut cur = n.parent;
                        let mut open = true;
                        while let Some(p) = cur {
                            if tree.node(p).eliminated {
                                open = false;
                                break;
                            }
                            cur = tree.node(p).parent;
                        }
                        open
                    }
                })
                .filter(|&i| tree.rank(i) <= tree.k())
                .collect()
        }

        for k in 1..=4 {
            let (mut store, records) = demo();
            let mut tree = CellTree::new(*store.space(), k, true, true);
            let mut stats = QueryStats::new();
            let empty = HashSet::new();
            for (i, r) in records.iter().enumerate() {
                let plane = store.add(i, r);
                tree.insert(&store, plane, &empty, &mut stats);
                assert_eq!(tree.promising_leaves(), scan(&tree), "k={k} after {i}");
            }
            // Reporting and eliminating keep the index in sync too.
            let leaves = tree.promising_leaves();
            if let Some((&first, rest)) = leaves.split_first() {
                tree.report(first);
                if let Some(&second) = rest.first() {
                    tree.eliminate(second);
                }
                assert_eq!(tree.promising_leaves(), scan(&tree), "k={k} after close");
            }
        }
    }

    #[test]
    fn full_halfspaces_cover_every_inserted_plane() {
        let (tree, ..) = insert_all(3);
        for leaf in tree.promising_leaves() {
            let full = tree.full_halfspaces(leaf);
            let mut planes: Vec<usize> = full.iter().map(|h| h.plane).collect();
            planes.sort_unstable();
            planes.dedup();
            assert_eq!(planes, vec![0, 1, 2, 3], "leaf {leaf} misses a plane");
        }
    }
}
