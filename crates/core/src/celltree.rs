//! The CellTree (Section 4 of the paper).
//!
//! The CellTree incrementally maintains the arrangement of the hyperplanes
//! inserted so far.  It is a binary tree: the root corresponds to the whole
//! (transformed) preference space, and every inserted hyperplane either
//!
//! * covers a node entirely on one side — the corresponding halfspace is
//!   appended to the node's **cover set** (cases I / II of the insertion
//!   algorithm), or
//! * cuts through a leaf — the leaf is **split** into two children whose
//!   edges are labelled with the two halfspaces (case III).
//!
//! Nodes never store their exact geometry.  A node is implicitly the
//! intersection of the halfspaces labelling the edges on its root path, its
//! own cover set, and the cover sets of its ancestors; by Lemma 2 only the
//! *edge labels* can bound the node, so feasibility tests (LP, Section 4.2)
//! use the edge labels only, which is what makes them cheap.
//!
//! The rank of a node is one plus the number of positive halfspaces among its
//! edge labels and (own + ancestor) cover sets (Lemma 1).  Nodes whose rank
//! exceeds `k` are eliminated together with their subtrees.
//!
//! # Memory layout
//!
//! Nodes live in a slab arena with a **free list**: eliminating a node
//! recycles the slots (and cover storage) of its entire subtree, so
//! long-running traversals that eliminate aggressively stay compact instead
//! of growing monotonically.  Cover sets are **flattened** into one shared
//! arena of linked [`Halfspace`] entries instead of one `Vec` per node —
//! most nodes have empty or tiny cover sets, and the shared arena removes
//! the per-node allocation while preserving insertion order (the order
//! matters: it determines LP constraint order and hence the exact witness
//! points the simplex solver returns).
//!
//! # Insertion = classify + apply
//!
//! Inserting a hyperplane is split into two phases:
//!
//! 1. **Classify** (read-only): walk the affected subtrees and decide, for
//!    every visited node, which insertion case applies — running the LP
//!    feasibility tests, the witness shortcuts and the dominance shortcut.
//!    Within a single insertion every node's decision depends only on the
//!    *pre-insertion* tree (cover pushes happen exactly where the walk
//!    terminates, never above a visited descendant), so the classification
//!    of independent subtrees is embarrassingly parallel:
//!    [`CellTree::insert_parallel`] fans it out over a work-stealing pool,
//!    while [`CellTree::insert`] drains the same task list on one thread.
//! 2. **Apply** (sequential, deterministic): replay the recorded decisions
//!    in the fixed depth-first order of the classic recursive insertion.
//!    Node allocation order, live-leaf registration order, cover-set order,
//!    witness seeds and elimination bubbling are therefore **identical**
//!    regardless of how the classification was scheduled — parallel and
//!    sequential insertion produce bit-for-bit the same tree.

use crate::hyperplanes::HyperplaneStore;
use crate::stats::QueryStats;
use kspr_geometry::{ConstraintSystem, Halfspace, PreferenceSpace, Sign};
use kspr_lp::{interior_point_counted, LinearConstraint};
use rayon::{Scope, ThreadPool};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

/// Sentinel for "no entry" in the cover arena's `u32` links.
const COVER_NONE: u32 = u32::MAX;

/// One node of the CellTree.
#[derive(Debug, Clone)]
pub struct CellNode {
    /// Parent node index (`None` for the root).
    pub parent: Option<usize>,
    /// Halfspace labelling the edge from the parent to this node.
    pub edge: Option<Halfspace>,
    /// Head of this node's cover chain in the tree's shared cover arena.
    cover_head: u32,
    /// Tail of the cover chain (for O(1) order-preserving appends).
    cover_tail: u32,
    /// Number of positive halfspaces in the cover chain (cached).
    pos_cover: usize,
    /// Children `(negative side, positive side)` if the node has been split.
    pub children: Option<(usize, usize)>,
    /// True once the node (and implicitly its subtree) has been pruned.
    pub eliminated: bool,
    /// True once the node has been reported as part of the kSPR result.
    pub reported: bool,
    /// True once LP-CTA has computed look-ahead rank bounds for this leaf.
    pub bounds_checked: bool,
    /// Cached interior witness point (Section 4.3.2).
    pub witness: Option<Vec<f64>>,
    /// Reuse generation of this arena slot; bumped when the slot is
    /// reclaimed, so stale references (e.g. live-leaf entries) can detect
    /// that the slot now holds a different node.
    generation: u32,
}

impl CellNode {
    fn new(parent: Option<usize>, edge: Option<Halfspace>) -> Self {
        Self {
            parent,
            edge,
            cover_head: COVER_NONE,
            cover_tail: COVER_NONE,
            pos_cover: 0,
            children: None,
            eliminated: false,
            reported: false,
            bounds_checked: false,
            witness: None,
            generation: 0,
        }
    }

    /// Number of positive halfspaces contributed by this node itself
    /// (its edge label plus its cover set).
    fn own_positives(&self) -> usize {
        let edge_pos = usize::from(matches!(
            self.edge,
            Some(Halfspace {
                sign: Sign::Positive,
                ..
            })
        ));
        edge_pos + self.pos_cover
    }

    /// True iff the node is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.children.is_none()
    }
}

/// One entry of the flattened cover-set storage: a halfspace plus the intra-
/// chain successor link.
#[derive(Debug, Clone)]
struct CoverEntry {
    half: Halfspace,
    next: u32,
}

/// The shared cover-set arena: every node's cover set is a linked chain of
/// entries in one flat vector, with freed chains recycled through an
/// intrusive free list.
#[derive(Debug, Clone)]
struct CoverArena {
    entries: Vec<CoverEntry>,
    free_head: u32,
}

impl Default for CoverArena {
    fn default() -> Self {
        Self {
            entries: Vec::new(),
            free_head: COVER_NONE,
        }
    }
}

impl CoverArena {
    /// Appends `half` to the chain `(head, tail)`, preserving insertion
    /// order, and returns the updated `(head, tail)`.
    fn push(&mut self, head: u32, tail: u32, half: Halfspace) -> (u32, u32) {
        let slot = if self.free_head != COVER_NONE {
            let slot = self.free_head;
            self.free_head = self.entries[slot as usize].next;
            self.entries[slot as usize] = CoverEntry {
                half,
                next: COVER_NONE,
            };
            slot
        } else {
            let slot = u32::try_from(self.entries.len()).expect("cover arena fits in u32");
            self.entries.push(CoverEntry {
                half,
                next: COVER_NONE,
            });
            slot
        };
        if tail == COVER_NONE {
            (slot, slot)
        } else {
            self.entries[tail as usize].next = slot;
            (head, slot)
        }
    }

    /// Splices an entire chain onto the free list (O(chain length)).
    fn free_chain(&mut self, head: u32) {
        if head == COVER_NONE {
            return;
        }
        let mut tail = head;
        while self.entries[tail as usize].next != COVER_NONE {
            tail = self.entries[tail as usize].next;
        }
        self.entries[tail as usize].next = self.free_head;
        self.free_head = head;
    }
}

/// The per-node decision recorded by the classification phase, replayed by
/// the apply phase.  One entry per visited node; nodes at which the walk did
/// not stop record [`NodeStep::Recurse`] and their children carry their own
/// entries.
#[derive(Debug, Clone)]
enum NodeStep {
    /// Both children were already closed on entry: close this node too.
    CloseEntry,
    /// The node's rank already exceeds `k`: eliminate it.
    EliminateRank,
    /// A processed dominator confines the node (Lemma 4/5): push the new
    /// plane's negative halfspace onto the cover set.
    CoverDominator,
    /// Case I: the node lies entirely inside h⁺.
    CoverPositive {
        /// The positive cover pushes the rank past `k`.
        eliminate: bool,
    },
    /// Case II: the node lies entirely inside h⁻.  `witness` carries the
    /// interior point found by the (feasible) case-1 test when the node had
    /// none cached.
    CoverNegative { witness: Option<Vec<f64>> },
    /// Case III on a leaf: split it.
    Split {
        witness: Option<Vec<f64>>,
        witness_neg: Option<Vec<f64>>,
        witness_pos: Option<Vec<f64>>,
        eliminate_pos: bool,
    },
    /// Case III on an internal node: descend into both children.
    Recurse { witness: Option<Vec<f64>> },
}

/// A unit of classification work: one node plus the path context the
/// feasibility tests need.  Forking at an internal node hands the right
/// child off as a new task (stolen by idle workers under
/// [`CellTree::insert_parallel`]) and continues into the left child.
struct ClassifyTask {
    idx: usize,
    /// Positive halfspaces contributed by the ancestors of `idx`.
    acc_pos: usize,
    /// Strict constraints of the edge labels on the root path.
    path_strict: Vec<LinearConstraint>,
    /// Strict constraints of the ancestors' cover sets (only maintained when
    /// Lemma 2 is disabled).
    cover_strict: Vec<LinearConstraint>,
}

impl ClassifyTask {
    fn root(idx: usize) -> Self {
        Self {
            idx,
            acc_pos: 0,
            path_strict: Vec::new(),
            cover_strict: Vec::new(),
        }
    }
}

/// Classification output: recorded steps plus the statistics deltas the
/// classified work generated.  Per-task outputs are merged; merging is
/// order-insensitive because steps are keyed by node index and the counters
/// are sums.
#[derive(Debug, Default)]
struct ClassifyOut {
    steps: Vec<(usize, NodeStep)>,
    feasibility_tests: usize,
    lp_constraints: usize,
    witness_hits: usize,
    /// Wall time spent inside the LP solver (timing metadata — excluded
    /// from consistency comparisons via [`crate::PhaseNanos`]).
    lp_ns: u64,
    /// Simplex pivots across the feasibility tests (deterministic work —
    /// participates in consistency comparisons).
    lp_pivots: usize,
}

impl ClassifyOut {
    fn absorb(&mut self, other: &mut ClassifyOut) {
        self.steps.append(&mut other.steps);
        self.feasibility_tests += other.feasibility_tests;
        self.lp_constraints += other.lp_constraints;
        self.witness_hits += other.witness_hits;
        self.lp_ns += other.lp_ns;
        self.lp_pivots += other.lp_pivots;
    }
}

/// Read-only view of everything the classification phase needs.  Borrowing
/// the node and cover arenas directly (instead of `&CellTree`) keeps the
/// view `Sync` — the tree's live-leaf index uses interior mutability and is
/// not touched during classification.
struct ClassifyCtx<'a> {
    nodes: &'a [CellNode],
    covers: &'a CoverArena,
    boundary: &'a [LinearConstraint],
    space: PreferenceSpace,
    k: usize,
    use_lemma2: bool,
    use_witness: bool,
    store: &'a HyperplaneStore,
    plane: usize,
    dominator_planes: &'a HashSet<usize>,
}

impl ClassifyCtx<'_> {
    /// True iff the node's edge label or cover set contains a negative
    /// halfspace contributed by a dominator of the incoming record.
    fn dominator_confines(&self, idx: usize) -> bool {
        if self.dominator_planes.is_empty() {
            return false;
        }
        let node = &self.nodes[idx];
        let is_dominator_negative =
            |h: &Halfspace| h.sign == Sign::Negative && self.dominator_planes.contains(&h.plane);
        if let Some(edge) = &node.edge {
            if is_dominator_negative(edge) {
                return true;
            }
        }
        let mut cur = node.cover_head;
        while cur != COVER_NONE {
            let entry = &self.covers.entries[cur as usize];
            if is_dominator_negative(&entry.half) {
                return true;
            }
            cur = entry.next;
        }
        false
    }

    /// Runs the LP feasibility test "is `node ∩ (side of plane)` empty?" and
    /// returns a strictly interior witness if it is not.  `lp_buf` is the
    /// reused constraint-assembly scratch of the calling worker.
    ///
    /// Constraints: the space boundary, the edge labels on the node's root
    /// path (always), the cover sets on the path (only when Lemma 2 is
    /// disabled), and the tested halfspace.
    fn feasibility(
        &self,
        sign: Sign,
        task: &ClassifyTask,
        lp_buf: &mut Vec<LinearConstraint>,
        out: &mut ClassifyOut,
    ) -> Option<Vec<f64>> {
        lp_buf.clear();
        lp_buf.extend_from_slice(self.boundary);
        lp_buf.extend_from_slice(&task.path_strict);
        if !self.use_lemma2 {
            lp_buf.extend_from_slice(&task.cover_strict);
        }
        lp_buf.push(self.store.plane(self.plane).constraint(sign, true));
        out.feasibility_tests += 1;
        out.lp_constraints += task.path_strict.len()
            + if self.use_lemma2 {
                0
            } else {
                task.cover_strict.len()
            }
            + 1;
        let started = std::time::Instant::now();
        let (solution, pivots) = interior_point_counted(lp_buf, self.space.work_dim());
        out.lp_ns += u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        out.lp_pivots += pivots;
        solution.map(|s| s.point)
    }
}

/// Classifies one task: descends the left spine of the affected subtree,
/// handing right children to `fork` (a local stack when sequential, a
/// work-stealing spawn when parallel).  Decisions are read-only with respect
/// to the tree; see the module docs for why that makes the parallel schedule
/// irrelevant to the outcome.
fn classify_task(
    ctx: &ClassifyCtx<'_>,
    mut task: ClassifyTask,
    out: &mut ClassifyOut,
    lp_buf: &mut Vec<LinearConstraint>,
    fork: &mut dyn FnMut(ClassifyTask),
) {
    loop {
        let idx = task.idx;
        let node = &ctx.nodes[idx];
        if node.eliminated || node.reported {
            return;
        }
        // If both children are already closed, close this node as well
        // (Algorithm 1, line 12).
        if let Some((l, r)) = node.children {
            let closed = |n: &CellNode| n.eliminated || n.reported;
            if closed(&ctx.nodes[l]) && closed(&ctx.nodes[r]) {
                out.steps.push((idx, NodeStep::CloseEntry));
                return;
            }
        }

        let rank_here = task.acc_pos + node.own_positives() + 1;
        if rank_here > ctx.k {
            out.steps.push((idx, NodeStep::EliminateRank));
            return;
        }

        // Dominance shortcut (P-CTA): a processed dominator already confines
        // this node to its negative halfspace, so the new record's negative
        // halfspace covers the node as well.
        if ctx.dominator_confines(idx) {
            out.steps.push((idx, NodeStep::CoverDominator));
            return;
        }

        // Witness-based shortcuts (Section 4.3.2).
        let mut case1_possible = true; // N ∩ h⁻ = ∅ (node inside h⁺)
        let mut case2_possible = true; // N ∩ h⁺ = ∅ (node inside h⁻)
        if ctx.use_witness {
            if let Some(w) = &node.witness {
                match ctx.store.side(ctx.plane, w) {
                    Some(Sign::Negative) => {
                        case1_possible = false;
                        out.witness_hits += 1;
                    }
                    Some(Sign::Positive) => {
                        case2_possible = false;
                        out.witness_hits += 1;
                    }
                    None => {}
                }
            }
        }

        // Witness points discovered by the feasibility tests below; the
        // first one seeds the node's own cache (when empty), the side-
        // specific ones seed the children if the node ends up split.
        let had_witness = node.witness.is_some();
        let mut witness_self: Option<Vec<f64>> = None;
        let mut witness_negative: Option<Vec<f64>> = None;
        let mut witness_positive: Option<Vec<f64>> = None;

        if case1_possible {
            match ctx.feasibility(Sign::Negative, &task, lp_buf, out) {
                None => {
                    // Case I: the node lies entirely inside h⁺.
                    out.steps.push((
                        idx,
                        NodeStep::CoverPositive {
                            eliminate: rank_here + 1 > ctx.k,
                        },
                    ));
                    return;
                }
                Some(w) => {
                    if !had_witness {
                        witness_self = Some(w.clone());
                    }
                    witness_negative = Some(w);
                }
            }
        }
        if case2_possible {
            match ctx.feasibility(Sign::Positive, &task, lp_buf, out) {
                None => {
                    // Case II: the node lies entirely inside h⁻.
                    out.steps.push((
                        idx,
                        NodeStep::CoverNegative {
                            witness: witness_self,
                        },
                    ));
                    return;
                }
                Some(w) => {
                    if !had_witness && witness_self.is_none() {
                        witness_self = Some(w.clone());
                    }
                    witness_positive = Some(w);
                }
            }
        }

        // Case III: the hyperplane cuts through the node.
        if node.is_leaf() {
            out.steps.push((
                idx,
                NodeStep::Split {
                    witness: witness_self,
                    witness_neg: witness_negative,
                    witness_pos: witness_positive,
                    eliminate_pos: rank_here + 1 > ctx.k,
                },
            ));
            return;
        }

        out.steps.push((
            idx,
            NodeStep::Recurse {
                witness: witness_self,
            },
        ));
        let (l, r) = node.children.expect("internal node has children");
        let acc_here = task.acc_pos + node.own_positives();
        if !ctx.use_lemma2 {
            let mut cur = node.cover_head;
            while cur != COVER_NONE {
                let entry = &ctx.covers.entries[cur as usize];
                task.cover_strict
                    .push(ctx.store.constraint(entry.half, true));
                cur = entry.next;
            }
        }
        // Fork the right child as an independent task ...
        let r_edge = ctx.nodes[r].edge.expect("non-root node has an edge");
        let mut r_path = task.path_strict.clone();
        r_path.push(ctx.store.constraint(r_edge, true));
        fork(ClassifyTask {
            idx: r,
            acc_pos: acc_here,
            path_strict: r_path,
            cover_strict: task.cover_strict.clone(),
        });
        // ... and continue into the left child in place.
        let l_edge = ctx.nodes[l].edge.expect("non-root node has an edge");
        task.path_strict.push(ctx.store.constraint(l_edge, true));
        task.idx = l;
        task.acc_pos = acc_here;
    }
}

/// Shared state of one parallel classification: the read-only view, the
/// merged output, and a pool of per-worker LP scratch buffers (checked out
/// per task, so a worker reuses one buffer across the tasks it executes).
struct ParallelClassify<'a> {
    ctx: ClassifyCtx<'a>,
    collected: Mutex<ClassifyOut>,
    scratch: Mutex<Vec<Vec<LinearConstraint>>>,
}

/// Runs one classification task on the pool, spawning forked subtasks onto
/// the same scope.
fn run_classify<'s>(shared: &'s ParallelClassify<'_>, scope: &Scope<'s>, task: ClassifyTask) {
    let mut lp_buf = shared
        .scratch
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .pop()
        .unwrap_or_default();
    let mut out = ClassifyOut::default();
    classify_task(&shared.ctx, task, &mut out, &mut lp_buf, &mut |forked| {
        scope.spawn(move |scope| run_classify(shared, scope, forked));
    });
    shared
        .collected
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .absorb(&mut out);
    shared
        .scratch
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(lp_buf);
}

/// The incremental arrangement index of Section 4.
#[derive(Debug, Clone)]
pub struct CellTree {
    nodes: Vec<CellNode>,
    /// Reusable arena slots reclaimed from eliminated subtrees (LIFO).
    free: Vec<usize>,
    /// Flattened cover-set storage shared by all nodes.
    covers: CoverArena,
    /// Total nodes ever created (slot reuse does not decrease this; it is
    /// the work metric the paper's Figure 11b reports).
    created: usize,
    root: usize,
    space: PreferenceSpace,
    boundary: Vec<LinearConstraint>,
    k: usize,
    use_lemma2: bool,
    use_witness: bool,
    /// Live-leaf index: candidate `(slot, generation)` pairs for
    /// [`CellTree::promising_leaves`].
    ///
    /// Every leaf enters exactly once (at creation); entries whose node has
    /// since been split, reported, eliminated, buried under an eliminated
    /// ancestor or whose slot was reclaimed (generation mismatch) are lazily
    /// dropped on the next `promising_leaves` call.  This keeps the
    /// per-round cost proportional to the number of *candidate* leaves
    /// instead of the O(total nodes) arena scan it replaces.  Interior
    /// mutability (`RefCell`) lets the read path self-compact; the index is
    /// never touched by the (parallel) classification phase.
    live_leaves: RefCell<Vec<(usize, u32)>>,
    /// Reused decision-map scratch for the apply phase.
    steps: HashMap<usize, NodeStep>,
    /// Reused LP-assembly scratch for sequential insertion.
    lp_scratch: Vec<LinearConstraint>,
}

impl CellTree {
    /// Creates a CellTree over `space` for a query with effective rank
    /// threshold `k`.
    pub fn new(space: PreferenceSpace, k: usize, use_lemma2: bool, use_witness: bool) -> Self {
        let boundary = space.boundary_constraints();
        Self {
            nodes: vec![CellNode::new(None, None)],
            free: Vec::new(),
            covers: CoverArena::default(),
            created: 1,
            root: 0,
            space,
            boundary,
            k,
            use_lemma2,
            use_witness,
            live_leaves: RefCell::new(vec![(0, 0)]),
            steps: HashMap::new(),
            lp_scratch: Vec::new(),
        }
    }

    /// The rank threshold the tree prunes against.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The preference space the tree partitions.
    pub fn space(&self) -> &PreferenceSpace {
        &self.space
    }

    /// Index of the root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Number of arena slots (live nodes plus reclaimed-but-unreused slots).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of nodes created over the tree's lifetime.  With slot
    /// reuse this can exceed [`CellTree::num_nodes`]; it is the work metric
    /// reported as `celltree_nodes` in [`QueryStats`].
    pub fn nodes_created(&self) -> usize {
        self.created
    }

    /// Number of reclaimed arena slots currently awaiting reuse.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Immutable access to a node.
    pub fn node(&self, idx: usize) -> &CellNode {
        &self.nodes[idx]
    }

    /// The cover set of a node, in insertion order.
    pub fn cover_halfspaces(&self, idx: usize) -> Vec<Halfspace> {
        let mut out = Vec::new();
        let mut cur = self.nodes[idx].cover_head;
        while cur != COVER_NONE {
            let entry = &self.covers.entries[cur as usize];
            out.push(entry.half);
            cur = entry.next;
        }
        out
    }

    /// True once the root has been eliminated (the whole preference space is
    /// pruned, so the kSPR result is empty).
    pub fn is_exhausted(&self) -> bool {
        self.nodes[self.root].eliminated
    }

    /// Rank of a node: 1 + positive halfspaces on its root path (edge labels
    /// and cover sets of the node and all ancestors) — Lemma 1.
    pub fn rank(&self, idx: usize) -> usize {
        let mut positives = 0;
        let mut cur = Some(idx);
        while let Some(i) = cur {
            positives += self.nodes[i].own_positives();
            cur = self.nodes[i].parent;
        }
        positives + 1
    }

    /// Marks a leaf as reported (part of the kSPR result); it is ignored by
    /// all subsequent operations.
    pub fn report(&mut self, idx: usize) {
        self.nodes[idx].reported = true;
    }

    /// Eliminates a node (and implicitly its subtree, whose arena slots are
    /// reclaimed for reuse).
    pub fn eliminate(&mut self, idx: usize) {
        self.close_node(idx);
        self.propagate_elimination(idx);
    }

    /// Marks a leaf as having had its look-ahead bounds computed.
    pub fn mark_bounds_checked(&mut self, idx: usize) {
        self.nodes[idx].bounds_checked = true;
    }

    /// Marks a node eliminated and reclaims the arena slots (and cover
    /// chains) of its strict descendants.  Reclaiming only *descendants*
    /// keeps the node itself valid as its parent's closed-child marker.
    fn close_node(&mut self, idx: usize) {
        self.nodes[idx].eliminated = true;
        let Some((l, r)) = self.nodes[idx].children.take() else {
            return;
        };
        let mut stack = vec![l, r];
        while let Some(i) = stack.pop() {
            if let Some((a, b)) = self.nodes[i].children.take() {
                stack.push(a);
                stack.push(b);
            }
            let head = self.nodes[i].cover_head;
            self.covers.free_chain(head);
            let node = &mut self.nodes[i];
            node.parent = None;
            node.edge = None;
            node.cover_head = COVER_NONE;
            node.cover_tail = COVER_NONE;
            node.pos_cover = 0;
            // A reclaimed slot reads as dead in any (stale) scan.
            node.eliminated = true;
            node.reported = false;
            node.bounds_checked = false;
            node.witness = None;
            node.generation = node.generation.wrapping_add(1);
            self.free.push(i);
        }
    }

    /// Allocates a node, reusing a reclaimed slot when one is available.
    fn alloc_node(&mut self, parent: usize, edge: Halfspace, witness: Option<Vec<f64>>) -> usize {
        self.created += 1;
        let mut fresh = CellNode::new(Some(parent), Some(edge));
        fresh.witness = witness;
        match self.free.pop() {
            Some(slot) => {
                fresh.generation = self.nodes[slot].generation;
                self.nodes[slot] = fresh;
                slot
            }
            None => {
                self.nodes.push(fresh);
                self.nodes.len() - 1
            }
        }
    }

    /// Appends `half` to the cover set of `idx`.
    fn push_cover(&mut self, idx: usize, half: Halfspace) {
        let node = &self.nodes[idx];
        let (head, tail) = self.covers.push(node.cover_head, node.cover_tail, half);
        let node = &mut self.nodes[idx];
        node.cover_head = head;
        node.cover_tail = tail;
        if half.sign == Sign::Positive {
            node.pos_cover += 1;
        }
    }

    /// When both children of a parent are eliminated (or reported) the parent
    /// itself can be eliminated, which propagates further up.
    fn propagate_elimination(&mut self, idx: usize) {
        let mut cur = self.nodes[idx].parent;
        while let Some(p) = cur {
            let (l, r) = match self.nodes[p].children {
                Some(c) => c,
                None => break,
            };
            let closed = |n: &CellNode| n.eliminated || n.reported;
            if closed(&self.nodes[l]) && closed(&self.nodes[r]) && !self.nodes[p].eliminated {
                self.close_node(p);
                cur = self.nodes[p].parent;
            } else {
                break;
            }
        }
    }

    /// The halfspaces labelling the edges on the root path of `idx`
    /// (the only halfspaces that can bound the node — Lemma 2), collected
    /// into a reused buffer.  Returns `true` iff the buffer had to grow —
    /// steady-state traversal reuses warm buffers and performs zero
    /// allocations here (asserted by tests through
    /// [`QueryStats::halfspace_scratch_grows`]).
    pub fn path_halfspaces_into(&self, idx: usize, out: &mut Vec<Halfspace>) -> bool {
        let capacity = out.capacity();
        out.clear();
        let mut cur = Some(idx);
        while let Some(i) = cur {
            if let Some(edge) = self.nodes[i].edge {
                out.push(edge);
            }
            cur = self.nodes[i].parent;
        }
        out.reverse();
        out.capacity() != capacity
    }

    /// Allocating convenience wrapper around
    /// [`CellTree::path_halfspaces_into`].
    pub fn path_halfspaces(&self, idx: usize) -> Vec<Halfspace> {
        let mut out = Vec::new();
        self.path_halfspaces_into(idx, &mut out);
        out
    }

    /// The full halfspace set of a node — edge labels plus the cover sets of
    /// the node and all its ancestors — collected into a reused buffer.
    /// Every hyperplane inserted while the node was live appears exactly
    /// once in this set.  Returns `true` iff the buffer had to grow.
    pub fn full_halfspaces_into(&self, idx: usize, out: &mut Vec<Halfspace>) -> bool {
        let capacity = out.capacity();
        out.clear();
        let mut cur = Some(idx);
        while let Some(i) = cur {
            if let Some(edge) = self.nodes[i].edge {
                out.push(edge);
            }
            let mut entry = self.nodes[i].cover_head;
            while entry != COVER_NONE {
                let e = &self.covers.entries[entry as usize];
                out.push(e.half);
                entry = e.next;
            }
            cur = self.nodes[i].parent;
        }
        out.capacity() != capacity
    }

    /// Allocating convenience wrapper around
    /// [`CellTree::full_halfspaces_into`].
    pub fn full_halfspaces(&self, idx: usize) -> Vec<Halfspace> {
        let mut out = Vec::new();
        self.full_halfspaces_into(idx, &mut out);
        out
    }

    /// All live, not-yet-reported leaves whose rank does not exceed `k`
    /// ("promising cells" in the paper's terminology).
    ///
    /// Served from the live-leaf index: instead of scanning the whole node
    /// arena, only current candidates are examined, and candidates that died
    /// since the last call (split, reported, eliminated, under an eliminated
    /// ancestor, or recycled into a different node) are permanently dropped
    /// along the way.
    pub fn promising_leaves(&self) -> Vec<usize> {
        let mut candidates = self.live_leaves.borrow_mut();
        candidates.retain(|&(i, generation)| {
            let n = &self.nodes[i];
            n.generation == generation
                && n.is_leaf()
                && !n.eliminated
                && !n.reported
                && !self.ancestor_closed(i)
        });
        // Rank filtering is *not* a drop criterion: it is re-evaluated per
        // call (rank only ever grows, but such leaves are eliminated by the
        // next insertion touching them, so keeping them here is cheap).
        candidates
            .iter()
            .map(|&(i, _)| i)
            .filter(|&i| self.rank(i) <= self.k)
            .collect()
    }

    /// True if any ancestor of `idx` is eliminated (the node is then dead even
    /// if its own flag was never set).
    fn ancestor_closed(&self, idx: usize) -> bool {
        let mut cur = self.nodes[idx].parent;
        while let Some(i) = cur {
            if self.nodes[i].eliminated {
                return true;
            }
            cur = self.nodes[i].parent;
        }
        false
    }

    /// The cached witness point of a node, if any.
    pub fn witness(&self, idx: usize) -> Option<&[f64]> {
        self.nodes[idx].witness.as_deref()
    }

    /// A constraint system describing the cell of node `idx`: the space
    /// boundary plus the bounding (edge-label) halfspaces.
    pub fn cell_system(&self, idx: usize, store: &HyperplaneStore) -> ConstraintSystem {
        let mut buf = Vec::new();
        self.cell_system_with(idx, store, &mut buf).0
    }

    /// Like [`CellTree::cell_system`], but collecting the path halfspaces
    /// into the reused buffer `buf`.  The second component reports whether
    /// the buffer had to grow.
    pub fn cell_system_with(
        &self,
        idx: usize,
        store: &HyperplaneStore,
        buf: &mut Vec<Halfspace>,
    ) -> (ConstraintSystem, bool) {
        let grew = self.path_halfspaces_into(idx, buf);
        let mut sys = ConstraintSystem::new(self.space);
        for h in buf.iter() {
            sys.push_halfspace(store.plane(h.plane), h.sign);
        }
        (sys, grew)
    }

    /// The read-only classification view over the current tree.
    fn classify_ctx<'a>(
        &'a self,
        store: &'a HyperplaneStore,
        plane: usize,
        dominator_planes: &'a HashSet<usize>,
    ) -> ClassifyCtx<'a> {
        ClassifyCtx {
            nodes: &self.nodes,
            covers: &self.covers,
            boundary: &self.boundary,
            space: self.space,
            k: self.k,
            use_lemma2: self.use_lemma2,
            use_witness: self.use_witness,
            store,
            plane,
            dominator_planes,
        }
    }

    /// Inserts hyperplane `plane` (an index into `store`) into the tree.
    ///
    /// `dominator_planes` contains the indices of already-inserted hyperplanes
    /// whose source records dominate the record of `plane`; when any of them
    /// contributes a *negative* halfspace to a node, the new hyperplane's
    /// negative halfspace is guaranteed to cover that node too (the P-CTA
    /// optimization backed by Lemma 4/5).  Pass an empty set to disable the
    /// optimization (plain CTA).
    pub fn insert(
        &mut self,
        store: &HyperplaneStore,
        plane: usize,
        dominator_planes: &HashSet<usize>,
        stats: &mut QueryStats,
    ) {
        let mut lp_buf = std::mem::take(&mut self.lp_scratch);
        let mut out = ClassifyOut::default();
        {
            let ctx = self.classify_ctx(store, plane, dominator_planes);
            let mut stack = vec![ClassifyTask::root(self.root)];
            while let Some(task) = stack.pop() {
                classify_task(&ctx, task, &mut out, &mut lp_buf, &mut |forked| {
                    stack.push(forked)
                });
            }
        }
        self.lp_scratch = lp_buf;
        self.finish_insert(plane, out, stats);
    }

    /// Like [`CellTree::insert`], but classifying independent subtrees
    /// concurrently on `pool`'s work-stealing workers (with per-worker LP
    /// scratch).  The decisions are applied in the same deterministic
    /// depth-first order as the sequential path, so the resulting tree —
    /// node indices, live-leaf order, witnesses, statistics — is
    /// bit-for-bit identical to what [`CellTree::insert`] produces.
    pub fn insert_parallel(
        &mut self,
        store: &HyperplaneStore,
        plane: usize,
        dominator_planes: &HashSet<usize>,
        stats: &mut QueryStats,
        pool: &ThreadPool,
    ) {
        let out = {
            let shared = ParallelClassify {
                ctx: self.classify_ctx(store, plane, dominator_planes),
                collected: Mutex::new(ClassifyOut::default()),
                scratch: Mutex::new(Vec::new()),
            };
            let root = self.root;
            pool.scope(|scope| run_classify(&shared, scope, ClassifyTask::root(root)));
            shared
                .collected
                .into_inner()
                .unwrap_or_else(|e| e.into_inner())
        };
        self.finish_insert(plane, out, stats);
        stats.parallel_inserts += 1;
    }

    /// Merges classification statistics and replays the recorded decisions
    /// in the canonical depth-first order (the apply phase).
    fn finish_insert(&mut self, plane: usize, mut out: ClassifyOut, stats: &mut QueryStats) {
        stats.feasibility_tests += out.feasibility_tests;
        stats.lp_constraints += out.lp_constraints;
        stats.witness_hits += out.witness_hits;
        stats.phases.lp_ns += out.lp_ns;
        stats.lp_pivots += out.lp_pivots;
        let mut steps = std::mem::take(&mut self.steps);
        steps.clear();
        steps.extend(out.steps.drain(..));
        self.apply_step(self.root, plane, &mut steps);
        debug_assert!(steps.is_empty(), "every recorded decision was applied");
        self.steps = steps;
        stats.celltree_nodes = self.created;
    }

    /// Applies the recorded decision at `idx` (recursing through
    /// [`NodeStep::Recurse`] nodes).  Steps are *removed* as they are
    /// applied, which guarantees a slot recycled later in the same apply
    /// pass can never alias a stale decision.
    fn apply_step(&mut self, idx: usize, plane: usize, steps: &mut HashMap<usize, NodeStep>) {
        let Some(step) = steps.remove(&idx) else {
            // The classification walk returned at this node without
            // recording anything (eliminated / reported on entry).
            return;
        };
        match step {
            NodeStep::CloseEntry | NodeStep::EliminateRank => self.close_node(idx),
            NodeStep::CoverDominator => self.push_cover(idx, Halfspace::negative(plane)),
            NodeStep::CoverPositive { eliminate } => {
                self.push_cover(idx, Halfspace::positive(plane));
                if eliminate {
                    self.close_node(idx);
                }
            }
            NodeStep::CoverNegative { witness } => {
                if let Some(w) = witness {
                    self.nodes[idx].witness = Some(w);
                }
                self.push_cover(idx, Halfspace::negative(plane));
            }
            NodeStep::Split {
                witness,
                witness_neg,
                witness_pos,
                eliminate_pos,
            } => {
                if let Some(w) = witness {
                    self.nodes[idx].witness = Some(w);
                }
                let neg_child = self.alloc_node(idx, Halfspace::negative(plane), witness_neg);
                let pos_child = self.alloc_node(idx, Halfspace::positive(plane), witness_pos);
                self.nodes[idx].children = Some((neg_child, pos_child));
                // Register the new leaves with the live-leaf index (the split
                // parent is lazily dropped on the next `promising_leaves`
                // call).
                let neg_generation = self.nodes[neg_child].generation;
                let pos_generation = self.nodes[pos_child].generation;
                self.live_leaves
                    .borrow_mut()
                    .extend([(neg_child, neg_generation), (pos_child, pos_generation)]);
                // The positive child's rank is one higher; prune it
                // immediately if it already exceeds k.
                if eliminate_pos {
                    self.nodes[pos_child].eliminated = true;
                }
            }
            NodeStep::Recurse { witness } => {
                if let Some(w) = witness {
                    self.nodes[idx].witness = Some(w);
                }
                let (l, r) = self.nodes[idx]
                    .children
                    .expect("recurse step targets an internal node");
                self.apply_step(l, plane, steps);
                self.apply_step(r, plane, steps);
                // Bubble elimination up if both children got closed.
                let closed = |n: &CellNode| n.eliminated || n.reported;
                if closed(&self.nodes[l]) && closed(&self.nodes[r]) {
                    self.close_node(idx);
                }
            }
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use kspr_geometry::PreferenceSpace;

    /// Builds the running example of Figures 1–4 of the paper: restaurants
    /// with (value, service, ambiance), focal record Kyma.
    fn demo() -> (HyperplaneStore, Vec<Vec<f64>>) {
        let space = PreferenceSpace::transformed(3);
        let focal = vec![5.0, 5.0, 7.0];
        let records = vec![
            vec![3.0, 8.0, 8.0], // r1 L'Entrecôte
            vec![9.0, 4.0, 4.0], // r2 Beirut Grill
            vec![8.0, 3.0, 4.0], // r3 El Coyote
            vec![4.0, 3.0, 6.0], // r4 La Braceria
        ];
        (HyperplaneStore::new(space, focal), records)
    }

    fn insert_all(k: usize) -> (CellTree, HyperplaneStore, Vec<Vec<f64>>, QueryStats) {
        let (mut store, records) = demo();
        let mut tree = CellTree::new(*store.space(), k, true, true);
        let mut stats = QueryStats::new();
        let empty = HashSet::new();
        for (i, r) in records.iter().enumerate() {
            let plane = store.add(i, r);
            tree.insert(&store, plane, &empty, &mut stats);
        }
        (tree, store, records, stats)
    }

    /// Oracle: rank of the focal record at working-space point `w`.
    fn rank_at(records: &[Vec<f64>], focal: &[f64], space: &PreferenceSpace, w: &[f64]) -> usize {
        let full = space.to_full_weight(w);
        let score = |r: &[f64]| -> f64 { r.iter().zip(&full).map(|(v, wi)| v * wi).sum() };
        let sp = score(focal);
        1 + records.iter().filter(|r| score(r) > sp).count()
    }

    #[test]
    fn root_starts_live_and_unsplit() {
        let space = PreferenceSpace::transformed(3);
        let tree = CellTree::new(space, 3, true, true);
        assert_eq!(tree.num_nodes(), 1);
        assert!(!tree.is_exhausted());
        assert_eq!(tree.rank(tree.root()), 1);
        assert_eq!(tree.promising_leaves(), vec![0]);
    }

    #[test]
    fn promising_leaves_have_correct_ranks() {
        let k = 3;
        let (tree, store, records, _) = insert_all(k);
        let focal = store.focal().to_vec();
        let space = *store.space();
        for leaf in tree.promising_leaves() {
            let leaf_rank = tree.rank(leaf);
            assert!(leaf_rank <= k);
            // The CellTree rank must equal the oracle rank at the witness (or
            // any interior point) of the leaf.
            let sys = tree.cell_system(leaf, &store);
            let w = sys
                .interior_point()
                .expect("promising leaf is non-empty")
                .point;
            assert_eq!(
                leaf_rank,
                rank_at(&records, &focal, &space, &w),
                "leaf {leaf}"
            );
        }
    }

    #[test]
    fn every_feasible_point_is_classified_consistently() {
        // Sample a grid of points; the union of promising leaves (rank <= k)
        // must contain exactly the points whose oracle rank is <= k.
        let k = 3;
        let (tree, store, records, _) = insert_all(k);
        let focal = store.focal().to_vec();
        let space = *store.space();
        let leaves = tree.promising_leaves();
        for a in 1..20 {
            for b in 1..(20 - a) {
                let w = vec![a as f64 / 20.0, b as f64 / 20.0];
                // Skip points (numerically) on a hyperplane: they belong to no
                // open cell and the oracle's strict comparison is ambiguous.
                let on_plane =
                    (0..store.len()).any(|i| store.plane(i).signed_distance(&w).abs() < 1e-6);
                if on_plane {
                    continue;
                }
                let oracle_in = rank_at(&records, &focal, &space, &w) <= k;
                let in_some_leaf = leaves
                    .iter()
                    .any(|&leaf| tree.cell_system(leaf, &store).contains(&w, 1e-9));
                assert_eq!(oracle_in, in_some_leaf, "w = {w:?}");
            }
        }
    }

    #[test]
    fn rank_one_pruning_eliminates_everything() {
        // With k = 1 and records that each beat the focal somewhere, large
        // parts of the tree get eliminated; the surviving leaves must still
        // be exactly the rank-1 cells.
        let (tree, store, records, _) = {
            let (mut store, records) = demo();
            let mut tree = CellTree::new(*store.space(), 1, true, true);
            let mut stats = QueryStats::new();
            let empty = HashSet::new();
            for (i, r) in records.iter().enumerate() {
                let plane = store.add(i, r);
                tree.insert(&store, plane, &empty, &mut stats);
            }
            (tree, store, records, stats)
        };
        let focal = store.focal().to_vec();
        let space = *store.space();
        for leaf in tree.promising_leaves() {
            let sys = tree.cell_system(leaf, &store);
            let w = sys.interior_point().unwrap().point;
            assert_eq!(rank_at(&records, &focal, &space, &w), 1);
        }
    }

    #[test]
    fn lemma2_and_witness_toggles_do_not_change_the_result() {
        let configs = [(true, true), (true, false), (false, true), (false, false)];
        let mut signatures = Vec::new();
        for (lemma2, witness) in configs {
            let (mut store, records) = demo();
            let mut tree = CellTree::new(*store.space(), 3, lemma2, witness);
            let mut stats = QueryStats::new();
            let empty = HashSet::new();
            for (i, r) in records.iter().enumerate() {
                let plane = store.add(i, r);
                tree.insert(&store, plane, &empty, &mut stats);
            }
            // Signature: sorted ranks of promising leaves plus classification
            // of a probe grid.
            let mut ranks: Vec<usize> = tree
                .promising_leaves()
                .iter()
                .map(|&l| tree.rank(l))
                .collect();
            ranks.sort_unstable();
            let mut grid = Vec::new();
            for a in 1..10 {
                for b in 1..(10 - a) {
                    let w = vec![a as f64 / 10.0, b as f64 / 10.0];
                    grid.push(
                        tree.promising_leaves()
                            .iter()
                            .any(|&l| tree.cell_system(l, &store).contains(&w, 1e-9)),
                    );
                }
            }
            signatures.push((ranks, grid));
        }
        assert!(signatures.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn witness_reuse_skips_feasibility_tests() {
        let (_, _, _, stats_with) = insert_all(3);
        let (mut store, records) = demo();
        let mut tree = CellTree::new(*store.space(), 3, true, false);
        let mut stats_without = QueryStats::new();
        let empty = HashSet::new();
        for (i, r) in records.iter().enumerate() {
            let plane = store.add(i, r);
            tree.insert(&store, plane, &empty, &mut stats_without);
        }
        assert!(stats_with.witness_hits > 0);
        assert_eq!(stats_without.witness_hits, 0);
        assert!(stats_with.feasibility_tests <= stats_without.feasibility_tests);
    }

    #[test]
    fn report_and_eliminate_propagate() {
        let (mut tree, ..) = insert_all(3);
        let leaves = tree.promising_leaves();
        assert!(!leaves.is_empty());
        for &leaf in &leaves {
            tree.report(leaf);
        }
        assert!(tree.promising_leaves().is_empty());
    }

    #[test]
    fn live_leaf_index_matches_full_arena_scan() {
        // Oracle: the O(nodes) scan the index replaced.
        fn scan(tree: &CellTree) -> Vec<usize> {
            (0..tree.num_nodes())
                .filter(|&i| {
                    let n = tree.node(i);
                    n.is_leaf() && !n.eliminated && !n.reported && {
                        let mut cur = n.parent;
                        let mut open = true;
                        while let Some(p) = cur {
                            if tree.node(p).eliminated {
                                open = false;
                                break;
                            }
                            cur = tree.node(p).parent;
                        }
                        open
                    }
                })
                .filter(|&i| tree.rank(i) <= tree.k())
                .collect()
        }

        for k in 1..=4 {
            let (mut store, records) = demo();
            let mut tree = CellTree::new(*store.space(), k, true, true);
            let mut stats = QueryStats::new();
            let empty = HashSet::new();
            for (i, r) in records.iter().enumerate() {
                let plane = store.add(i, r);
                tree.insert(&store, plane, &empty, &mut stats);
                assert_eq!(tree.promising_leaves(), scan(&tree), "k={k} after {i}");
            }
            // Reporting and eliminating keep the index in sync too.
            let leaves = tree.promising_leaves();
            if let Some((&first, rest)) = leaves.split_first() {
                tree.report(first);
                if let Some(&second) = rest.first() {
                    tree.eliminate(second);
                }
                assert_eq!(tree.promising_leaves(), scan(&tree), "k={k} after close");
            }
        }
    }

    #[test]
    fn full_halfspaces_cover_every_inserted_plane() {
        let (tree, ..) = insert_all(3);
        for leaf in tree.promising_leaves() {
            let full = tree.full_halfspaces(leaf);
            let mut planes: Vec<usize> = full.iter().map(|h| h.plane).collect();
            planes.sort_unstable();
            planes.dedup();
            assert_eq!(planes, vec![0, 1, 2, 3], "leaf {leaf} misses a plane");
        }
    }

    /// Test-local dominance oracle (avoids a dev-dependency on kspr-spatial).
    fn dominates(a: &[f64], b: &[f64]) -> bool {
        a.iter().zip(b).all(|(x, y)| x >= y) && a.iter().zip(b).any(|(x, y)| x > y)
    }

    /// A complete structural fingerprint of the tree: every arena slot's
    /// fields (including reclaimed slots), the creation counter, and the
    /// promising-leaf list in index order.
    #[allow(clippy::type_complexity)]
    fn structural_signature(
        tree: &CellTree,
    ) -> (
        usize,
        usize,
        Vec<(
            Option<usize>,
            Option<Halfspace>,
            Option<(usize, usize)>,
            bool,
            bool,
            Option<Vec<f64>>,
            Vec<Halfspace>,
        )>,
        Vec<usize>,
    ) {
        let nodes = (0..tree.num_nodes())
            .map(|i| {
                let n = tree.node(i);
                (
                    n.parent,
                    n.edge,
                    n.children,
                    n.eliminated,
                    n.reported,
                    n.witness.clone(),
                    tree.cover_halfspaces(i),
                )
            })
            .collect();
        (
            tree.num_nodes(),
            tree.nodes_created(),
            nodes,
            tree.promising_leaves(),
        )
    }

    #[test]
    fn parallel_insert_is_bit_identical_to_sequential() {
        for threads in [2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool builds");
            for k in 1..=4 {
                let (mut store_seq, records) = demo();
                let (mut store_par, _) = demo();
                let mut seq = CellTree::new(*store_seq.space(), k, true, true);
                let mut par = CellTree::new(*store_par.space(), k, true, true);
                let mut stats_seq = QueryStats::new();
                let mut stats_par = QueryStats::new();
                for (i, r) in records.iter().enumerate() {
                    // P-CTA-style dominator sets so the dominance-shortcut
                    // decision is exercised on both paths.
                    let doms: HashSet<usize> = records[..i]
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| dominates(p, r))
                        .map(|(j, _)| j)
                        .collect();
                    let plane_seq = store_seq.add(i, r);
                    seq.insert(&store_seq, plane_seq, &doms, &mut stats_seq);
                    let plane_par = store_par.add(i, r);
                    par.insert_parallel(&store_par, plane_par, &doms, &mut stats_par, &pool);
                    assert_eq!(
                        structural_signature(&seq),
                        structural_signature(&par),
                        "threads={threads} k={k} after record {i}"
                    );
                }
                assert_eq!(stats_par.parallel_inserts, records.len());
                // Every counter except the scheduling-metadata one matches.
                stats_par.parallel_inserts = stats_seq.parallel_inserts;
                assert_eq!(stats_seq, stats_par, "threads={threads} k={k}");
            }
        }
    }

    #[test]
    fn eliminated_subtree_slots_are_reclaimed_and_reused() {
        let (mut tree, mut store, records, mut stats) = insert_all(3);
        // Eliminate a live internal node below the root: its strict
        // descendants' slots go to the free list.
        let internal = (0..tree.num_nodes())
            .find(|&i| {
                i != tree.root() && !tree.node(i).eliminated && tree.node(i).children.is_some()
            })
            .expect("demo tree has an internal node below the root");
        assert_eq!(tree.free_slots(), 0);
        tree.eliminate(internal);
        let free_before = tree.free_slots();
        assert!(free_before > 0, "eliminating a subtree reclaims slots");
        // The next insertion reuses reclaimed slots instead of growing the
        // arena one-for-one with created nodes.
        let slots_before = tree.num_nodes();
        let created_before = tree.nodes_created();
        let plane = store.add(records.len(), &[7.0, 6.0, 5.0]);
        tree.insert(&store, plane, &HashSet::new(), &mut stats);
        let created_delta = tree.nodes_created() - created_before;
        let slots_delta = tree.num_nodes() - slots_before;
        assert!(created_delta > 0, "the new plane splits at least one leaf");
        assert!(
            slots_delta < created_delta,
            "allocation reused free slots ({slots_delta} new slots for {created_delta} nodes)"
        );
        assert_eq!(stats.celltree_nodes, tree.nodes_created());
    }

    #[test]
    fn halfspace_scratch_buffers_do_not_reallocate_when_warm() {
        let (tree, store, ..) = insert_all(3);
        let leaves = tree.promising_leaves();
        assert!(!leaves.is_empty());

        let mut full = Vec::new();
        for &l in &leaves {
            tree.full_halfspaces_into(l, &mut full);
        }
        let (ptr, cap) = (full.as_ptr(), full.capacity());
        for _ in 0..5 {
            for &l in &leaves {
                assert!(!tree.full_halfspaces_into(l, &mut full), "leaf {l} grew");
            }
        }
        assert_eq!(full.as_ptr(), ptr);
        assert_eq!(full.capacity(), cap);

        let mut path = Vec::new();
        for &l in &leaves {
            tree.path_halfspaces_into(l, &mut path);
        }
        for &l in &leaves {
            assert!(!tree.path_halfspaces_into(l, &mut path), "leaf {l} grew");
        }

        // The warm buffers return exactly what the allocating wrappers do.
        for &l in &leaves {
            tree.full_halfspaces_into(l, &mut full);
            assert_eq!(full, tree.full_halfspaces(l));
            let (sys, grew) = tree.cell_system_with(l, &store, &mut path);
            assert!(!grew);
            let reference = tree.cell_system(l, &store);
            let w = sys.interior_point().expect("leaf is non-empty").point;
            assert!(reference.contains(&w, 1e-9));
        }
    }
}
