//! Dominance-based preprocessing (Section 3.1 of the paper).
//!
//! Records that dominate the focal record `p` score higher than `p` for every
//! weight vector, so the kSPR answer on `D` equals the answer on
//! `D` minus those records with `k` reduced by their number.  Records that
//! `p` dominates (or ties with exactly) can never outrank `p` and are dropped
//! outright.  The remaining records are re-indexed in a query-local aggregate
//! R-tree used by the skyline batching of P-CTA and the group bounds of
//! LP-CTA.

use crate::stats::QueryStats;
use kspr_spatial::{dominates, AggregateRTree, Record};

/// Outcome of preprocessing a query.
#[derive(Debug)]
pub enum Prepared {
    /// The focal record can never be in the top-`k`: at least `k` records
    /// dominate it, so the result is empty.
    Empty {
        /// Number of records dominating the focal record.
        dominators: usize,
    },
    /// The focal record is in the top-`k` for *every* weight vector: after
    /// removing dominators and dominated records no competitor remains and
    /// fewer than `k` dominators exist.
    WholeSpace {
        /// Number of records dominating the focal record.
        dominators: usize,
    },
    /// The general case: the filtered competitors and the effective `k`.
    Filtered(FilteredQuery),
}

/// The filtered competitor set for the general case.
#[derive(Debug)]
pub struct FilteredQuery {
    /// Competitors that neither dominate nor are dominated by the focal
    /// record, re-identified with sequential ids.
    pub records: Vec<Record>,
    /// Original dataset ids of the filtered records (`original_ids[i]` is the
    /// dataset id of filtered record `i`).
    pub original_ids: Vec<usize>,
    /// Query-local aggregate R-tree over the filtered records.
    pub tree: AggregateRTree,
    /// Effective `k` after accounting for dominators of the focal record.
    pub k_effective: usize,
    /// Number of records dominating the focal record.
    pub dominators: usize,
}

/// Runs the Section 3.1 preprocessing.
///
/// * Records identical to `focal` are treated as ties and ignored (the paper
///   ignores ties "for ease of presentation").
/// * `stats` receives the dominator / dominated counts.
///
/// # Panics
/// Panics if `k == 0` or if `focal` does not match the dataset arity.
pub fn prepare(
    records: &[Record],
    focal: &[f64],
    k: usize,
    fanout: usize,
    stats: &mut QueryStats,
) -> Prepared {
    assert!(k >= 1, "k must be at least 1");
    assert!(
        records.iter().all(|r| r.dim() == focal.len()),
        "focal record arity must match the dataset"
    );

    let mut dominators = 0usize;
    let mut dominated = 0usize;
    let mut kept: Vec<Record> = Vec::new();
    let mut original_ids: Vec<usize> = Vec::new();

    for r in records {
        if r.values == focal {
            // Tie with the focal record: ignored.
            continue;
        }
        if dominates(&r.values, focal) {
            dominators += 1;
        } else if dominates(focal, &r.values) {
            dominated += 1;
        } else {
            original_ids.push(r.id);
            kept.push(Record::new(kept.len(), r.values.clone()));
        }
    }

    stats.dominating_records = dominators;
    stats.dominated_records = dominated;

    if dominators >= k {
        return Prepared::Empty { dominators };
    }
    if kept.is_empty() {
        return Prepared::WholeSpace { dominators };
    }
    let tree = AggregateRTree::bulk_load(kept.clone(), fanout);
    Prepared::Filtered(FilteredQuery {
        records: kept,
        original_ids,
        tree,
        k_effective: k - dominators,
        dominators,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(raw: &[Vec<f64>]) -> Vec<Record> {
        raw.iter()
            .enumerate()
            .map(|(i, v)| Record::new(i, v.clone()))
            .collect()
    }

    #[test]
    fn filters_dominators_and_dominated() {
        let data = records(&[
            vec![0.9, 0.9], // dominates focal
            vec![0.1, 0.1], // dominated by focal
            vec![0.9, 0.1], // incomparable
            vec![0.5, 0.5], // tie (identical)
        ]);
        let mut stats = QueryStats::new();
        let prep = prepare(&data, &[0.5, 0.5], 3, 8, &mut stats);
        match prep {
            Prepared::Filtered(f) => {
                assert_eq!(f.records.len(), 1);
                assert_eq!(f.original_ids, vec![2]);
                assert_eq!(f.k_effective, 2);
                assert_eq!(f.dominators, 1);
            }
            other => panic!("expected Filtered, got {other:?}"),
        }
        assert_eq!(stats.dominating_records, 1);
        assert_eq!(stats.dominated_records, 1);
    }

    #[test]
    fn too_many_dominators_yields_empty() {
        let data = records(&[vec![0.9, 0.9], vec![0.8, 0.8], vec![0.7, 0.7]]);
        let mut stats = QueryStats::new();
        match prepare(&data, &[0.5, 0.5], 2, 8, &mut stats) {
            Prepared::Empty { dominators } => assert_eq!(dominators, 3),
            other => panic!("expected Empty, got {other:?}"),
        }
    }

    #[test]
    fn no_competitors_yields_whole_space() {
        let data = records(&[vec![0.1, 0.1], vec![0.2, 0.2]]);
        let mut stats = QueryStats::new();
        match prepare(&data, &[0.5, 0.5], 1, 8, &mut stats) {
            Prepared::WholeSpace { dominators } => assert_eq!(dominators, 0),
            other => panic!("expected WholeSpace, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn rejects_zero_k() {
        let data = records(&[vec![0.1, 0.1]]);
        prepare(&data, &[0.5, 0.5], 0, 8, &mut QueryStats::new());
    }

    #[test]
    fn filtered_ids_are_sequential() {
        let data = records(&[vec![0.9, 0.1], vec![0.1, 0.9], vec![0.6, 0.4]]);
        let mut stats = QueryStats::new();
        if let Prepared::Filtered(f) = prepare(&data, &[0.5, 0.5], 2, 8, &mut stats) {
            assert!(f.records.iter().enumerate().all(|(i, r)| r.id == i));
            assert_eq!(f.original_ids.len(), f.records.len());
        } else {
            panic!("expected Filtered");
        }
    }
}
