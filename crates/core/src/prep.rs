//! Dominance-based preprocessing (Section 3.1 of the paper).
//!
//! Records that dominate the focal record `p` score higher than `p` for every
//! weight vector, so the kSPR answer on `D` equals the answer on
//! `D` minus those records with `k` reduced by their number.  Records that
//! `p` dominates (or ties with exactly) can never outrank `p` and are dropped
//! outright.  The remaining records are re-indexed in a query-local aggregate
//! R-tree used by the skyline batching of P-CTA and the group bounds of
//! LP-CTA.

use crate::dataset::Dataset;
use crate::stats::QueryStats;
use kspr_spatial::{dominates, AggregateRTree, DomClass, Record};
use std::sync::Arc;

/// Outcome of preprocessing a query.
#[derive(Debug)]
pub enum Prepared {
    /// The focal record can never be in the top-`k`: at least `k` records
    /// dominate it, so the result is empty.
    Empty {
        /// Number of records dominating the focal record.
        dominators: usize,
    },
    /// The focal record is in the top-`k` for *every* weight vector: after
    /// removing dominators and dominated records no competitor remains and
    /// fewer than `k` dominators exist.
    WholeSpace {
        /// Number of records dominating the focal record.
        dominators: usize,
    },
    /// The general case: the filtered competitors and the effective `k`.
    Filtered(FilteredQuery),
}

/// The filtered competitor set for the general case.
#[derive(Debug)]
pub struct FilteredQuery {
    /// Competitors that neither dominate nor are dominated by the focal
    /// record, re-identified with sequential ids.
    pub records: Vec<Record>,
    /// Original dataset ids of the filtered records (`original_ids[i]` is the
    /// dataset id of filtered record `i`).  Always ascending, so the inverse
    /// mapping is a binary search.
    pub original_ids: Vec<usize>,
    /// Aggregate R-tree over the filtered records.  Usually query-local;
    /// when preprocessing removes no record the dataset index is reused
    /// (shared) instead of being rebuilt.
    pub tree: Arc<AggregateRTree>,
    /// Effective `k` after accounting for dominators of the focal record.
    pub k_effective: usize,
    /// Number of records dominating the focal record.
    pub dominators: usize,
    /// Snapshot of the index's simulated-I/O counter taken when the query
    /// started; per-query I/O is reported as the delta against it.  (For a
    /// shared index serving concurrent queries the delta is approximate —
    /// it only affects statistics, never results.)
    pub io_base: u64,
}

impl FilteredQuery {
    /// The filtered dataset id corresponding to an original dataset id, if
    /// the record survived preprocessing.
    pub fn filtered_id_of(&self, original_id: usize) -> Option<usize> {
        self.original_ids.binary_search(&original_id).ok()
    }
}

/// Runs the Section 3.1 preprocessing.
///
/// * Records identical to `focal` are treated as ties and ignored (the paper
///   ignores ties "for ease of presentation").
/// * `stats` receives the dominator / dominated counts.
///
/// # Panics
/// Panics if `k == 0` or if `focal` does not match the dataset arity.
pub fn prepare(
    records: &[Record],
    focal: &[f64],
    k: usize,
    fanout: usize,
    stats: &mut QueryStats,
) -> Prepared {
    prepare_impl(records, focal, k, fanout, stats, None)
}

/// Like [`prepare`], but with access to the dataset's prebuilt index: when
/// preprocessing removes no record and the dataset index was built with the
/// requested fanout, the (identical) dataset R-tree is reused instead of
/// being bulk-loaded again.  The reused index is shared — across queries and,
/// in batch mode, across threads — which is safe because all traversals are
/// read-only.
pub fn prepare_with_index(
    dataset: &Dataset,
    focal: &[f64],
    k: usize,
    fanout: usize,
    stats: &mut QueryStats,
) -> Prepared {
    prepare_impl(dataset.records(), focal, k, fanout, stats, Some(dataset))
}

fn prepare_impl(
    records: &[Record],
    focal: &[f64],
    k: usize,
    fanout: usize,
    stats: &mut QueryStats,
    dataset: Option<&Dataset>,
) -> Prepared {
    assert!(k >= 1, "k must be at least 1");
    assert!(
        records.iter().all(|r| r.dim() == focal.len()),
        "focal record arity must match the dataset"
    );

    let mut dominators = 0usize;
    let mut dominated = 0usize;
    let mut kept: Vec<Record> = Vec::new();
    let mut original_ids: Vec<usize> = Vec::new();

    // Dataset-backed queries classify through the columnar dominance kernel
    // (one contiguous column sweep instead of a pointer chase per record);
    // the slice-backed path keeps the row-major tests.  Both decide the
    // exact same comparisons, so the outcomes are identical.
    let mut classes: Vec<DomClass> = Vec::new();
    if let Some(d) = dataset {
        stats.phases.dominance_ns += d.columns().classify_into_timed(focal, &mut classes);
    }

    for r in records {
        if let Some(d) = dataset {
            // Record slots deleted through a `DatasetStore` stay in the slice
            // (ids are stable) but must not act as competitors.
            if !d.is_live(r.id) {
                continue;
            }
        }
        let class = match classes.get(r.id) {
            Some(&c) => c,
            None => {
                if r.values == focal {
                    DomClass::Tie
                } else if dominates(&r.values, focal) {
                    DomClass::Dominates
                } else if dominates(focal, &r.values) {
                    DomClass::Dominated
                } else {
                    DomClass::Incomparable
                }
            }
        };
        match class {
            // Tie with the focal record: ignored.
            DomClass::Tie => {}
            DomClass::Dominates => dominators += 1,
            DomClass::Dominated => dominated += 1,
            DomClass::Incomparable => {
                original_ids.push(r.id);
                kept.push(Record::new(kept.len(), r.values.clone()));
            }
        }
    }

    stats.dominating_records = dominators;
    stats.dominated_records = dominated;

    if dominators >= k {
        return Prepared::Empty { dominators };
    }
    if kept.is_empty() {
        return Prepared::WholeSpace { dominators };
    }
    let tree = match dataset {
        // Fast path: nothing was filtered out, so the filtered set *is* the
        // dataset (same records, same sequential ids — `bulk_load` asserts
        // every indexed record's id equals its position, so the dataset index
        // can never disagree with the re-id'd `kept` vector here) and the
        // prebuilt index can be shared as-is.  Sharing is result-preserving:
        // an index grown by incremental inserts may differ in *shape* from
        // the STR tree a rebuild would produce, which can shift traversal
        // statistics (node reads, bound tightness) but never the record set
        // or the query result.  `kept.len() == records.len()` compares
        // against the raw slot count, so a dataset with tombstones (where
        // surviving ids are no longer sequential) can never take this path.
        Some(d) if kept.len() == records.len() && d.tree().fanout() == fanout => d.shared_index(),
        _ => Arc::new(AggregateRTree::bulk_load(kept.clone(), fanout)),
    };
    let io_base = tree.io().reads();
    Prepared::Filtered(FilteredQuery {
        records: kept,
        original_ids,
        tree,
        k_effective: k - dominators,
        dominators,
        io_base,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(raw: &[Vec<f64>]) -> Vec<Record> {
        raw.iter()
            .enumerate()
            .map(|(i, v)| Record::new(i, v.clone()))
            .collect()
    }

    #[test]
    fn filters_dominators_and_dominated() {
        let data = records(&[
            vec![0.9, 0.9], // dominates focal
            vec![0.1, 0.1], // dominated by focal
            vec![0.9, 0.1], // incomparable
            vec![0.5, 0.5], // tie (identical)
        ]);
        let mut stats = QueryStats::new();
        let prep = prepare(&data, &[0.5, 0.5], 3, 8, &mut stats);
        match prep {
            Prepared::Filtered(f) => {
                assert_eq!(f.records.len(), 1);
                assert_eq!(f.original_ids, vec![2]);
                assert_eq!(f.k_effective, 2);
                assert_eq!(f.dominators, 1);
            }
            other => panic!("expected Filtered, got {other:?}"),
        }
        assert_eq!(stats.dominating_records, 1);
        assert_eq!(stats.dominated_records, 1);
    }

    #[test]
    fn too_many_dominators_yields_empty() {
        let data = records(&[vec![0.9, 0.9], vec![0.8, 0.8], vec![0.7, 0.7]]);
        let mut stats = QueryStats::new();
        match prepare(&data, &[0.5, 0.5], 2, 8, &mut stats) {
            Prepared::Empty { dominators } => assert_eq!(dominators, 3),
            other => panic!("expected Empty, got {other:?}"),
        }
    }

    #[test]
    fn no_competitors_yields_whole_space() {
        let data = records(&[vec![0.1, 0.1], vec![0.2, 0.2]]);
        let mut stats = QueryStats::new();
        match prepare(&data, &[0.5, 0.5], 1, 8, &mut stats) {
            Prepared::WholeSpace { dominators } => assert_eq!(dominators, 0),
            other => panic!("expected WholeSpace, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn rejects_zero_k() {
        let data = records(&[vec![0.1, 0.1]]);
        prepare(&data, &[0.5, 0.5], 0, 8, &mut QueryStats::new());
    }

    #[test]
    fn index_reuse_when_nothing_is_filtered() {
        use crate::dataset::Dataset;
        // Pairwise-incomparable records and an incomparable focal record:
        // preprocessing keeps everything, so the dataset index is shared.
        let dataset = Dataset::new(vec![vec![0.9, 0.1], vec![0.1, 0.9], vec![0.6, 0.35]]);
        let mut stats = QueryStats::new();
        let prep = prepare_with_index(
            &dataset,
            &[0.5, 0.5],
            2,
            AggregateRTree::DEFAULT_FANOUT,
            &mut stats,
        );
        match prep {
            Prepared::Filtered(f) => {
                assert!(
                    Arc::ptr_eq(&f.tree, &dataset.shared_index()),
                    "index must be shared"
                );
                assert_eq!(f.records.len(), dataset.len());
                assert_eq!(f.filtered_id_of(2), Some(2));
            }
            other => panic!("expected Filtered, got {other:?}"),
        }
        // A different fanout forces a query-local rebuild.
        let mut stats = QueryStats::new();
        if let Prepared::Filtered(f) = prepare_with_index(&dataset, &[0.5, 0.5], 2, 4, &mut stats) {
            assert!(!Arc::ptr_eq(&f.tree, &dataset.shared_index()));
            assert_eq!(f.tree.fanout(), 4);
        } else {
            panic!("expected Filtered");
        }
    }

    #[test]
    fn tombstoned_records_are_not_competitors() {
        use crate::dataset::DatasetStore;
        // Record 1 dominates the focal record; once deleted it must stop
        // counting, and the query-local tree must be rebuilt (no fast-path
        // sharing of an index with id gaps).
        let mut store = DatasetStore::from_raw(vec![
            vec![0.9, 0.1],
            vec![0.9, 0.9],
            vec![0.1, 0.9],
            vec![0.6, 0.4],
        ]);
        store.delete(1);
        let mut stats = QueryStats::new();
        let prep = prepare_with_index(
            store.dataset(),
            &[0.5, 0.5],
            2,
            AggregateRTree::DEFAULT_FANOUT,
            &mut stats,
        );
        match prep {
            Prepared::Filtered(f) => {
                assert_eq!(f.original_ids, vec![0, 2, 3]);
                assert_eq!(f.k_effective, 2, "the deleted dominator is gone");
                assert!(
                    !Arc::ptr_eq(&f.tree, &store.dataset().shared_index()),
                    "an index with tombstones must not be shared"
                );
                assert!(f.records.iter().enumerate().all(|(i, r)| r.id == i));
            }
            other => panic!("expected Filtered, got {other:?}"),
        }
        assert_eq!(stats.dominating_records, 0);
    }

    #[test]
    fn filtered_id_mapping_round_trips() {
        let data = records(&[vec![0.9, 0.1], vec![0.9, 0.9], vec![0.1, 0.9]]);
        let mut stats = QueryStats::new();
        if let Prepared::Filtered(f) = prepare(&data, &[0.5, 0.5], 2, 8, &mut stats) {
            // Record 1 dominates the focal record and is filtered out.
            assert_eq!(f.original_ids, vec![0, 2]);
            assert_eq!(f.filtered_id_of(0), Some(0));
            assert_eq!(f.filtered_id_of(1), None);
            assert_eq!(f.filtered_id_of(2), Some(1));
        } else {
            panic!("expected Filtered");
        }
    }

    #[test]
    fn filtered_ids_are_sequential() {
        let data = records(&[vec![0.9, 0.1], vec![0.1, 0.9], vec![0.6, 0.4]]);
        let mut stats = QueryStats::new();
        if let Prepared::Filtered(f) = prepare(&data, &[0.5, 0.5], 2, 8, &mut stats) {
            assert!(f.records.iter().enumerate().all(|(i, r)| r.id == i));
            assert_eq!(f.original_ids.len(), f.records.len());
        } else {
            panic!("expected Filtered");
        }
    }
}
