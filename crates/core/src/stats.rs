//! Per-query statistics.
//!
//! The paper's evaluation reports, next to response time, several side
//! metrics: the number of processed records (hyperplanes inserted into the
//! CellTree, Figure 11a), the number of CellTree nodes (Figure 11b), LP-call
//! counts and constraint counts (Figure 17), and simulated I/O (Figure 19).
//! [`QueryStats`] collects all of them for a single kSPR query.

/// Wall-clock nanoseconds spent in each engine phase while answering one
/// query: Section-3.1 shared preparation (with the columnar dominance
/// kernel broken out), CellTree expansion, and the LP solves inside it.
///
/// The phases **overlap** rather than partition: `dominance_ns` is part of
/// `prep_ns`, and `lp_ns` accrues mostly inside `expansion_ns` — they are
/// span windows, not a disjoint sum.
///
/// Like [`QueryStats::wall_time_ns`] these are timing metadata, not work:
/// two runs of the same query never measure the same nanoseconds.  Unlike
/// `wall_time_ns` (a plain field that consistency tests zero by hand), the
/// phase block is excluded from comparison *by construction*: its
/// `PartialEq` always answers `true`, so every bit-identical-stats assertion
/// in the repo ignores it without changes.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseNanos {
    /// Section-3.1 shared preparation: dominance classification, skyband
    /// restriction, prep-cache work.
    pub prep_ns: u64,
    /// CellTree expansion: hyperplane insertion through result collection.
    pub expansion_ns: u64,
    /// LP solves — cell feasibility tests plus look-ahead bound
    /// optimizations (§6).
    pub lp_ns: u64,
    /// The columnar dominance kernel inside preparation.
    pub dominance_ns: u64,
}

impl PhaseNanos {
    /// Accumulates another phase block (phase-wise sum).
    pub fn merge(&mut self, other: &PhaseNanos) {
        self.prep_ns += other.prep_ns;
        self.expansion_ns += other.expansion_ns;
        self.lp_ns += other.lp_ns;
        self.dominance_ns += other.dominance_ns;
    }

    /// `(name, nanos)` pairs in a stable order, for histogram recording and
    /// reports.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> {
        [
            ("prep", self.prep_ns),
            ("expansion", self.expansion_ns),
            ("lp", self.lp_ns),
            ("dominance", self.dominance_ns),
        ]
        .into_iter()
    }
}

/// Timing metadata never participates in equality: two identical engine
/// runs measure different nanoseconds, and every consistency suite in the
/// repo compares whole [`QueryStats`] blocks for bit-identity.
impl PartialEq for PhaseNanos {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

/// Counters collected while answering one kSPR query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryStats {
    /// Records whose hyperplane was inserted into the CellTree.
    pub processed_records: usize,
    /// Records removed by the dominance preprocessing of Section 3.1
    /// (dominators of the focal record).
    pub dominating_records: usize,
    /// Records removed because the focal record dominates them.
    pub dominated_records: usize,
    /// Total number of CellTree nodes created.
    pub celltree_nodes: usize,
    /// Number of LP feasibility tests executed.
    pub feasibility_tests: usize,
    /// Feasibility tests skipped thanks to the cached witness point (§4.3.2).
    pub witness_hits: usize,
    /// Total number of record-induced constraints passed to the LP solver
    /// across all feasibility tests (used for the Figure 17 ablation).
    pub lp_constraints: usize,
    /// Number of LP optimizations run for look-ahead score bounds (§6).
    pub bound_lp_calls: usize,
    /// Cells pruned early because their lower rank bound exceeded `k` (§6.1).
    pub cells_pruned_by_bounds: usize,
    /// Cells reported early because their upper rank bound was at most `k`.
    pub cells_reported_by_bounds: usize,
    /// Cells reported early by the pivot-based test of Lemma 5 (P-CTA).
    pub cells_reported_by_pivots: usize,
    /// Number of record batches processed (P-CTA / LP-CTA).
    pub batches: usize,
    /// Simulated page reads on the data R-tree.
    pub io_reads: u64,
    /// Simulated I/O time in milliseconds (0 unless an I/O model is set).
    pub io_time_ms: f64,
    /// Number of regions in the final result.
    pub result_regions: usize,
    /// Hyperplane insertions whose frontier classification ran on the
    /// work-stealing pool (0 when the query ran fully sequentially).
    ///
    /// Scheduling metadata, not work: parallel and sequential insertion
    /// produce bit-identical trees and identical values for every *other*
    /// counter, so consistency tests must (and do) exclude this field.
    pub parallel_inserts: usize,
    /// Times a reused halfspace scratch buffer (path / full halfspace
    /// collection) had to grow its allocation.  Steady-state traversal keeps
    /// this at the warm-up value — the counter exists so tests can assert the
    /// hot path performs zero allocations.
    pub halfspace_scratch_grows: usize,
    /// Wall-clock time of the engine run in nanoseconds, stamped by
    /// [`QueryEngine::run`] and its batch variants.
    ///
    /// Timing metadata, not work: like `parallel_inserts` it is
    /// nondeterministic, so consistency tests must (and do) exclude it when
    /// comparing statistics blocks.
    ///
    /// [`QueryEngine::run`]: crate::QueryEngine::run
    pub wall_time_ns: u64,
    /// Simplex pivots performed across every LP feasibility test of the
    /// query.  Bland's rule makes the count a pure function of each LP
    /// instance, so — unlike the nanosecond fields — it is deterministic,
    /// schedule-independent, and participates in consistency comparisons.
    pub lp_pivots: usize,
    /// Per-phase wall-clock breakdown (prep / expansion / LP / dominance).
    /// Timing metadata: always compares equal (see [`PhaseNanos`]).
    pub phases: PhaseNanos,
}

impl QueryStats {
    /// A zeroed statistics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Average number of constraints per feasibility test.
    pub fn avg_constraints_per_test(&self) -> f64 {
        if self.feasibility_tests == 0 {
            0.0
        } else {
            self.lp_constraints as f64 / self.feasibility_tests as f64
        }
    }

    /// Merges another statistics block into this one (used when a harness
    /// aggregates several queries).
    pub fn merge(&mut self, other: &QueryStats) {
        self.processed_records += other.processed_records;
        self.dominating_records += other.dominating_records;
        self.dominated_records += other.dominated_records;
        self.celltree_nodes += other.celltree_nodes;
        self.feasibility_tests += other.feasibility_tests;
        self.witness_hits += other.witness_hits;
        self.lp_constraints += other.lp_constraints;
        self.bound_lp_calls += other.bound_lp_calls;
        self.cells_pruned_by_bounds += other.cells_pruned_by_bounds;
        self.cells_reported_by_bounds += other.cells_reported_by_bounds;
        self.cells_reported_by_pivots += other.cells_reported_by_pivots;
        self.batches += other.batches;
        self.io_reads += other.io_reads;
        self.io_time_ms += other.io_time_ms;
        self.result_regions += other.result_regions;
        self.parallel_inserts += other.parallel_inserts;
        self.halfspace_scratch_grows += other.halfspace_scratch_grows;
        self.wall_time_ns += other.wall_time_ns;
        self.lp_pivots += other.lp_pivots;
        self.phases.merge(&other.phases);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_constraints() {
        let mut s = QueryStats::new();
        assert_eq!(s.avg_constraints_per_test(), 0.0);
        s.feasibility_tests = 4;
        s.lp_constraints = 10;
        assert!((s.avg_constraints_per_test() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = QueryStats {
            processed_records: 3,
            io_reads: 5,
            lp_pivots: 4,
            ..Default::default()
        };
        let b = QueryStats {
            processed_records: 2,
            io_reads: 7,
            result_regions: 1,
            lp_pivots: 6,
            phases: PhaseNanos {
                prep_ns: 100,
                expansion_ns: 200,
                lp_ns: 50,
                dominance_ns: 25,
            },
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.processed_records, 5);
        assert_eq!(a.io_reads, 12);
        assert_eq!(a.result_regions, 1);
        assert_eq!(a.lp_pivots, 10);
        assert_eq!(a.phases.prep_ns, 100);
        assert_eq!(a.phases.lp_ns, 50);
    }

    #[test]
    fn phase_timings_never_break_equality() {
        // The whole point of PhaseNanos: bit-identical consistency suites
        // compare QueryStats blocks, and wall-clock phases must not trip
        // them.
        let a = QueryStats {
            processed_records: 1,
            phases: PhaseNanos {
                prep_ns: 123,
                expansion_ns: 456,
                lp_ns: 78,
                dominance_ns: 9,
            },
            ..Default::default()
        };
        let b = QueryStats {
            processed_records: 1,
            ..Default::default()
        };
        assert_eq!(a, b, "phase timings are excluded from comparison");
        let names: Vec<&str> = a.phases.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["prep", "expansion", "lp", "dominance"]);
        // lp_pivots, by contrast, is deterministic work and must compare.
        let c = QueryStats {
            processed_records: 1,
            lp_pivots: 3,
            ..Default::default()
        };
        assert_ne!(a, c);
    }
}
