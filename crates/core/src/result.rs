//! kSPR results: regions of the preference space, finalization, and the
//! market-impact measure.
//!
//! Each [`Region`] is one cell of the hyperplane arrangement in which the
//! focal record ranks within the top-`k`.  During query processing regions are
//! represented implicitly by their bounding halfspaces; the *finalization*
//! step (end of Section 4.2 of the paper) computes their exact geometry by
//! halfspace intersection, which enables the volume-based market-impact
//! probability discussed in the paper's introduction.

use crate::stats::QueryStats;
use kspr_geometry::{Hyperplane, Polytope, PreferenceSpace, Sign};
use kspr_lp::LinearConstraint;

/// One region of the preference space where the focal record is in the top-`k`.
#[derive(Debug, Clone)]
pub struct Region {
    /// Rank of the focal record inside the region at the time the region was
    /// confirmed (for progressively reported regions this is the rank with
    /// respect to the records processed so far, which is a lower bound on —
    /// and usually equal to — the final rank; it never exceeds `k`).
    pub rank: usize,
    /// Bounding halfspaces of the region (excluding the space boundary).
    pub halfspaces: Vec<(Hyperplane, Sign)>,
    /// Exact geometry, available after finalization.
    pub polytope: Option<Polytope>,
}

impl Region {
    /// Creates an unfinalized region.
    pub fn new(rank: usize, halfspaces: Vec<(Hyperplane, Sign)>) -> Self {
        Self {
            rank,
            halfspaces,
            polytope: None,
        }
    }

    /// The closed constraint set of the region, including the space boundary.
    pub fn constraints(&self, space: &PreferenceSpace) -> Vec<LinearConstraint> {
        let mut out = space.boundary_constraints();
        out.extend(
            self.halfspaces
                .iter()
                .map(|(plane, sign)| plane.constraint(*sign, false)),
        );
        out
    }

    /// True iff the working-space point `w` lies in (the closure of) the region.
    pub fn contains(&self, w: &[f64], space: &PreferenceSpace) -> bool {
        self.constraints(space).iter().all(|c| {
            let v = c.eval(w);
            match c.op.closure() {
                kspr_lp::Relation::LessEq => v <= c.rhs + 1e-9,
                kspr_lp::Relation::GreaterEq => v >= c.rhs - 1e-9,
                _ => unreachable!("closure is never strict"),
            }
        })
    }

    /// Computes the exact geometry of the region (the paper's finalization
    /// step: halfspace intersection of the bounding halfspaces, ignoring
    /// redundant ones).
    pub fn finalize(&mut self, space: &PreferenceSpace) {
        let constraints = self.constraints(space);
        self.polytope = Polytope::from_constraints_reduced(&constraints, space.work_dim());
    }

    /// Volume of the region.  Uses the finalized polytope if available,
    /// otherwise finalizes a temporary copy.
    pub fn volume(&self, space: &PreferenceSpace, samples: usize, seed: u64) -> f64 {
        match &self.polytope {
            Some(p) => p.volume(samples, seed),
            None => {
                let constraints = self.constraints(space);
                Polytope::from_constraints(&constraints, space.work_dim())
                    .map(|p| p.volume(samples, seed))
                    .unwrap_or(0.0)
            }
        }
    }
}

/// The complete answer to a kSPR query.
#[derive(Debug, Clone)]
pub struct KsprResult {
    /// The preference space the regions live in.
    pub space: PreferenceSpace,
    /// The result regions (disjoint cells of the arrangement).
    pub regions: Vec<Region>,
    /// Statistics collected while answering the query.
    pub stats: QueryStats,
}

impl KsprResult {
    /// An empty result (the focal record is never in the top-`k`).
    pub fn empty(space: PreferenceSpace, stats: QueryStats) -> Self {
        Self {
            space,
            regions: Vec::new(),
            stats,
        }
    }

    /// A result covering the whole preference space (the focal record is in
    /// the top-`k` for every weight vector).
    pub fn whole_space(space: PreferenceSpace, rank: usize, mut stats: QueryStats) -> Self {
        stats.result_regions = 1;
        Self {
            space,
            regions: vec![Region::new(rank, Vec::new())],
            stats,
        }
    }

    /// Number of result regions.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// True iff the result is empty.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// True iff the result is a single region with no bounding halfspace —
    /// the focal record is in the top-`k` for *every* preference, at one
    /// uniform rank.  Such results arise when no filtered competitor's
    /// hyperplane ever splits the preference space, and they can be patched
    /// in place under focal-dominator updates (the rank shifts uniformly);
    /// the standing-query monitor (`kspr-monitor`) relies on this test.
    pub fn is_whole_space(&self) -> bool {
        self.regions.len() == 1 && self.regions[0].halfspaces.is_empty()
    }

    /// The sorted multiset of region ranks — the cheap change-detection
    /// signature the standing-query monitor uses to decide whether a
    /// maintained result actually changed (and hence whether subscribers
    /// should be notified).
    pub fn rank_signature(&self) -> Vec<usize> {
        let mut ranks: Vec<usize> = self.regions.iter().map(|r| r.rank).collect();
        ranks.sort_unstable();
        ranks
    }

    /// True iff the working-space point `w` lies in some result region, i.e.
    /// the focal record is in the top-`k` for that preference.
    pub fn contains(&self, w: &[f64]) -> bool {
        self.regions.iter().any(|r| r.contains(w, &self.space))
    }

    /// True iff the full, normalized `d`-dimensional weight vector `w` lies in
    /// some result region.
    pub fn contains_full_weight(&self, w: &[f64]) -> bool {
        self.contains(&self.space.from_full_weight(w))
    }

    /// Finalizes every region (computes exact geometries).
    pub fn finalize(&mut self) {
        let space = self.space;
        for r in &mut self.regions {
            r.finalize(&space);
        }
    }

    /// Total volume of the result regions.
    pub fn total_volume(&self, samples: usize, seed: u64) -> f64 {
        // fold (not sum): `Iterator::sum::<f64>()` yields -0.0 for an empty
        // iterator, which survives `clamp` and prints as "-0.00".
        self.regions.iter().enumerate().fold(0.0, |acc, (i, r)| {
            acc + r.volume(&self.space, samples, seed.wrapping_add(i as u64))
        })
    }

    /// Market impact: the probability that the focal record is in the top-`k`
    /// for a weight vector drawn uniformly from the preference space
    /// (total region volume divided by the space volume).
    pub fn impact(&self, samples: usize, seed: u64) -> f64 {
        (self.total_volume(samples, seed) / self.space.volume()).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspr_geometry::Hyperplane;

    fn space2() -> PreferenceSpace {
        PreferenceSpace::transformed(3)
    }

    #[test]
    fn whole_space_result() {
        let r = KsprResult::whole_space(space2(), 1, QueryStats::new());
        assert_eq!(r.num_regions(), 1);
        assert!(r.contains(&[0.3, 0.3]));
        assert!(r.contains_full_weight(&[0.2, 0.3, 0.5]));
        let vol = r.total_volume(0, 0);
        assert!((vol - 0.5).abs() < 1e-9, "triangle area 1/2, got {vol}");
        assert!((r.impact(0, 0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_result() {
        let r = KsprResult::empty(space2(), QueryStats::new());
        assert!(r.is_empty());
        assert!(!r.contains(&[0.3, 0.3]));
        assert_eq!(r.impact(0, 0), 0.0);
        // ... and specifically not -0.0, which would format as "-0.00".
        assert!(r.impact(0, 0).is_sign_positive());
        assert!(r.total_volume(0, 0).is_sign_positive());
    }

    #[test]
    fn whole_space_detection_and_rank_signature() {
        let whole = KsprResult::whole_space(space2(), 2, QueryStats::new());
        assert!(whole.is_whole_space());
        assert_eq!(whole.rank_signature(), vec![2]);

        let empty = KsprResult::empty(space2(), QueryStats::new());
        assert!(!empty.is_whole_space());
        assert!(empty.rank_signature().is_empty());

        let plane = Hyperplane {
            coeffs: vec![1.0, 0.0],
            rhs: 0.5,
        };
        let bounded = KsprResult {
            space: space2(),
            regions: vec![
                Region::new(3, vec![(plane.clone(), Sign::Negative)]),
                Region::new(1, vec![(plane, Sign::Positive)]),
            ],
            stats: QueryStats::new(),
        };
        assert!(!bounded.is_whole_space(), "bounded regions are not whole");
        assert_eq!(bounded.rank_signature(), vec![1, 3], "ranks are sorted");
    }

    #[test]
    fn halfspace_bounded_region() {
        // Region w1 <= 0.5 inside the transformed 2-d simplex.
        let plane = Hyperplane {
            coeffs: vec![1.0, 0.0],
            rhs: 0.5,
        };
        let mut region = Region::new(1, vec![(plane, Sign::Negative)]);
        assert!(region.contains(&[0.3, 0.3], &space2()));
        assert!(!region.contains(&[0.7, 0.1], &space2()));
        region.finalize(&space2());
        let poly = region.polytope.as_ref().expect("finalized");
        assert!(!poly.vertices().is_empty());
        // Area: the simplex (1/2) minus the triangle beyond w1 = 0.5 (1/8).
        let vol = region.volume(&space2(), 0, 0);
        assert!((vol - 0.375).abs() < 1e-9, "got {vol}");
    }

    #[test]
    fn impact_sums_region_volumes() {
        let left = Hyperplane {
            coeffs: vec![1.0, 0.0],
            rhs: 0.25,
        };
        let right = Hyperplane {
            coeffs: vec![1.0, 0.0],
            rhs: 0.75,
        };
        let result = KsprResult {
            space: space2(),
            regions: vec![
                Region::new(1, vec![(left, Sign::Negative)]),
                Region::new(2, vec![(right, Sign::Positive)]),
            ],
            stats: QueryStats::new(),
        };
        let vol = result.total_volume(0, 0);
        // Left part: simplex left of w1=0.25; right part: simplex right of 0.75.
        let expected = (0.5 - 0.75 * 0.75 / 2.0) + (0.25 * 0.25 / 2.0);
        assert!(
            (vol - expected).abs() < 1e-9,
            "got {vol}, expected {expected}"
        );
        assert!(result.impact(0, 0) > 0.0 && result.impact(0, 0) < 1.0);
    }
}
