//! iMaxRank: the incremental maximum-rank baseline (Figure 10(b)).
//!
//! The maximum-rank query of Mouratidis et al. (PVLDB 2015) partitions the
//! preference space with a Quad-tree, classifies every record-induced
//! halfspace against each Quad-tree leaf, and derives the arrangement cells
//! inside each leaf with *exact halfspace-intersection geometry*.  Run
//! incrementally up to rank `k`, it answers kSPR — but, as the paper shows,
//! three orders of magnitude slower than the CellTree methods because
//! (i) exact geometry is computed for every candidate cell and (ii) the
//! space-partitioning Quad-tree makes each hyperplane intersect many leaves.
//!
//! This module reproduces that baseline: a Quad-tree over the transformed
//! preference space, per-leaf classification of the hyperplanes, and
//! exhaustive per-leaf cell enumeration backed by the exact
//! [`Polytope`] vertex enumeration (the `qhull`
//! substitute).  It is intentionally expensive; the benchmark harness only
//! runs it on small instances, exactly as the paper does.

use crate::config::KsprConfig;
use crate::dataset::Dataset;
use crate::prep::{prepare_with_index, Prepared};
use crate::result::{KsprResult, Region};
use crate::stats::QueryStats;
use kspr_geometry::{Hyperplane, Polytope, PreferenceSpace, Sign};
use kspr_lp::{LinearConstraint, Relation};

/// Maximum number of cutting hyperplanes tolerated in a Quad-tree leaf before
/// it is subdivided further.
const LEAF_CUT_THRESHOLD: usize = 6;
/// Maximum Quad-tree depth.
const MAX_DEPTH: usize = 6;

/// Runs the iMaxRank baseline.
///
/// # Panics
/// Panics if `k == 0` or the focal arity mismatches the dataset.
pub fn run_imaxrank(dataset: &Dataset, focal: &[f64], k: usize, config: &KsprConfig) -> KsprResult {
    let space = PreferenceSpace::transformed(focal.len());
    let dim = space.work_dim();
    let mut stats = QueryStats::new();

    let filtered = match prepare_with_index(dataset, focal, k, config.rtree_fanout, &mut stats) {
        Prepared::Empty { .. } => return KsprResult::empty(space, stats),
        Prepared::WholeSpace { dominators } => {
            let mut r = KsprResult::whole_space(space, dominators + 1, stats);
            if config.finalize {
                r.finalize();
            }
            return r;
        }
        Prepared::Filtered(f) => f,
    };
    let k_eff = filtered.k_effective;

    let planes: Vec<Hyperplane> = filtered
        .records
        .iter()
        .map(|r| Hyperplane::separating(&r.values, focal, &space))
        .collect();
    stats.processed_records = planes.len();

    let mut regions: Vec<Region> = Vec::new();
    let root_box = QuadBox {
        lo: vec![0.0; dim],
        hi: vec![1.0; dim],
    };
    process_box(
        &root_box,
        0,
        &planes,
        &space,
        k_eff,
        filtered.dominators,
        &mut regions,
        &mut stats,
    );

    stats.result_regions = regions.len();
    let mut result = KsprResult {
        space,
        regions,
        stats,
    };
    if config.finalize {
        result.finalize();
    }
    result
}

/// An axis-aligned box of the Quad-tree.
struct QuadBox {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl QuadBox {
    /// Interval of `coeffs · w` over the box.
    fn linear_range(&self, coeffs: &[f64]) -> (f64, f64) {
        let mut lo = 0.0;
        let mut hi = 0.0;
        for (i, &c) in coeffs.iter().enumerate() {
            if c >= 0.0 {
                lo += c * self.lo[i];
                hi += c * self.hi[i];
            } else {
                lo += c * self.hi[i];
                hi += c * self.lo[i];
            }
        }
        (lo, hi)
    }

    /// True iff the box lies entirely outside the transformed simplex.
    fn outside_simplex(&self) -> bool {
        self.lo.iter().sum::<f64>() >= 1.0
    }

    /// The box constraints as closed linear constraints.
    fn constraints(&self, dim: usize) -> Vec<LinearConstraint> {
        let mut out = Vec::with_capacity(2 * dim);
        for i in 0..dim {
            let mut e = vec![0.0; dim];
            e[i] = 1.0;
            out.push(LinearConstraint::new(
                e.clone(),
                Relation::GreaterEq,
                self.lo[i],
            ));
            out.push(LinearConstraint::new(e, Relation::LessEq, self.hi[i]));
        }
        out
    }

    /// The box bounds as result-region halfspaces (so reported regions do not
    /// bleed outside their Quad-tree leaf).
    fn halfspaces(&self, dim: usize) -> Vec<(Hyperplane, Sign)> {
        let mut out = Vec::new();
        for i in 0..dim {
            let mut e = vec![0.0; dim];
            e[i] = 1.0;
            if self.lo[i] > 0.0 {
                out.push((
                    Hyperplane {
                        coeffs: e.clone(),
                        rhs: self.lo[i],
                    },
                    Sign::Positive,
                ));
            }
            if self.hi[i] < 1.0 {
                out.push((
                    Hyperplane {
                        coeffs: e.clone(),
                        rhs: self.hi[i],
                    },
                    Sign::Negative,
                ));
            }
        }
        out
    }

    /// Splits the box into its `2^dim` children.
    fn children(&self) -> Vec<QuadBox> {
        let dim = self.lo.len();
        let mid: Vec<f64> = self
            .lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| (l + h) / 2.0)
            .collect();
        (0..(1usize << dim))
            .map(|mask| {
                let mut lo = self.lo.clone();
                let mut hi = self.hi.clone();
                for i in 0..dim {
                    if mask & (1 << i) != 0 {
                        lo[i] = mid[i];
                    } else {
                        hi[i] = mid[i];
                    }
                }
                QuadBox { lo, hi }
            })
            .collect()
    }
}

/// Classification of one hyperplane against a box.
enum BoxSide {
    /// The box lies entirely in the positive halfspace.
    Positive,
    /// The box lies entirely in the negative halfspace.
    Negative,
    /// The hyperplane cuts through the box.
    Cutting,
}

fn classify(plane: &Hyperplane, bx: &QuadBox) -> BoxSide {
    let (lo, hi) = bx.linear_range(&plane.coeffs);
    if lo > plane.rhs {
        BoxSide::Positive
    } else if hi < plane.rhs {
        BoxSide::Negative
    } else {
        BoxSide::Cutting
    }
}

#[allow(clippy::too_many_arguments)]
fn process_box(
    bx: &QuadBox,
    depth: usize,
    planes: &[Hyperplane],
    space: &PreferenceSpace,
    k: usize,
    dominators: usize,
    regions: &mut Vec<Region>,
    stats: &mut QueryStats,
) {
    if bx.outside_simplex() {
        return;
    }
    let mut cover_pos = 0usize;
    let mut cutting: Vec<usize> = Vec::new();
    for (i, plane) in planes.iter().enumerate() {
        match classify(plane, bx) {
            BoxSide::Positive => cover_pos += 1,
            BoxSide::Negative => {}
            BoxSide::Cutting => cutting.push(i),
        }
    }
    // Rank everywhere in the box is at least cover_pos + 1.
    if cover_pos + 1 > k {
        return;
    }
    if cutting.len() > LEAF_CUT_THRESHOLD && depth < MAX_DEPTH {
        for child in bx.children() {
            process_box(
                child_ref(&child),
                depth + 1,
                planes,
                space,
                k,
                dominators,
                regions,
                stats,
            );
        }
        return;
    }
    // Leaf: enumerate the arrangement cells of the cutting hyperplanes inside
    // the box with exact geometry (the expensive part of the baseline).
    let dim = space.work_dim();
    let mut base = bx.constraints(dim);
    base.push(LinearConstraint::new(vec![1.0; dim], Relation::LessEq, 1.0));
    enumerate_cells(
        bx,
        &base,
        planes,
        &cutting,
        0,
        cover_pos,
        &mut Vec::new(),
        space,
        k,
        dominators,
        regions,
        stats,
    );
}

fn child_ref(b: &QuadBox) -> &QuadBox {
    b
}

#[allow(clippy::too_many_arguments)]
fn enumerate_cells(
    bx: &QuadBox,
    base: &[LinearConstraint],
    planes: &[Hyperplane],
    cutting: &[usize],
    next: usize,
    positives: usize,
    chosen: &mut Vec<(usize, Sign)>,
    space: &PreferenceSpace,
    k: usize,
    dominators: usize,
    regions: &mut Vec<Region>,
    stats: &mut QueryStats,
) {
    if positives + 1 > k {
        return;
    }
    if next == cutting.len() {
        let rank = positives + 1;
        if rank <= k {
            let mut halves = bx.halfspaces(space.work_dim());
            halves.extend(
                chosen
                    .iter()
                    .map(|&(idx, sign)| (planes[idx].clone(), sign)),
            );
            regions.push(Region::new(rank + dominators, halves));
        }
        return;
    }
    let plane_idx = cutting[next];
    for sign in [Sign::Negative, Sign::Positive] {
        let mut constraints = base.to_vec();
        for &(idx, s) in chosen.iter() {
            constraints.push(planes[idx].constraint(s, false));
        }
        constraints.push(planes[plane_idx].constraint(sign, false));
        // Exact-geometry feasibility check: this is what makes the baseline
        // slow, exactly as in the original method.
        stats.feasibility_tests += 1;
        let poly = Polytope::from_constraints(&constraints, space.work_dim());
        let feasible = poly
            .map(|p| p.vertices().len() > space.work_dim())
            .unwrap_or(false);
        if feasible {
            chosen.push((plane_idx, sign));
            enumerate_cells(
                bx,
                base,
                planes,
                cutting,
                next + 1,
                positives + usize::from(sign == Sign::Positive),
                chosen,
                space,
                k,
                dominators,
                regions,
                stats,
            );
            chosen.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::run_lpcta;
    use crate::naive;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_dataset(n: usize, d: usize, seed: u64) -> (Dataset, Vec<Vec<f64>>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let raw: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        (Dataset::new(raw.clone()), raw)
    }

    #[test]
    fn imaxrank_matches_the_oracle_on_small_instances() {
        let (dataset, raw) = random_dataset(40, 3, 4);
        let focal = vec![0.7, 0.6, 0.65];
        for k in [1, 3] {
            let result = run_imaxrank(&dataset, &focal, k, &KsprConfig::default());
            let agreement = naive::classification_agreement(&result, &raw, &focal, k, 300, 5);
            assert!(agreement > 0.99, "k={k}: agreement {agreement}");
        }
    }

    #[test]
    fn imaxrank_and_lpcta_agree_on_membership() {
        let (dataset, _) = random_dataset(30, 3, 11);
        let focal = vec![0.6, 0.6, 0.6];
        let config = KsprConfig::default();
        let a = run_imaxrank(&dataset, &focal, 2, &config);
        let b = run_lpcta(&dataset, &focal, 2, &config);
        let points = naive::sample_weights(&a.space, 200, 17);
        for w in points {
            assert_eq!(a.contains(&w), b.contains(&w), "w = {w:?}");
        }
    }

    #[test]
    fn quadbox_linear_range_and_split() {
        let bx = QuadBox {
            lo: vec![0.0, 0.0],
            hi: vec![1.0, 1.0],
        };
        let (lo, hi) = bx.linear_range(&[1.0, -1.0]);
        assert_eq!(lo, -1.0);
        assert_eq!(hi, 1.0);
        assert_eq!(bx.children().len(), 4);
        assert!(!bx.outside_simplex());
        let far = QuadBox {
            lo: vec![0.6, 0.6],
            hi: vec![1.0, 1.0],
        };
        assert!(far.outside_simplex());
    }
}
