//! Query configuration: every optimization of the paper can be toggled so the
//! ablation experiments (Figures 16–18, 22) can isolate its effect.

use crate::approximate::QueryTier;
use kspr_geometry::Space;
use kspr_spatial::IoCostModel;

/// Which look-ahead bounds LP-CTA uses when computing the rank bounds of a
/// cell (Section 6 of the paper; ablated in Figure 18).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundMode {
    /// Per-record score bounds only (Section 6.1, `record_bounds` in Fig. 18).
    Record,
    /// Aggregate R-tree group bounds (Section 6.2, `group_bounds`).
    Group,
    /// Group bounds plus the cheap min/max-vector filter (Section 6.3,
    /// `fast_bounds`) — the full LP-CTA configuration.
    #[default]
    Fast,
}

/// Configuration shared by all kSPR algorithms.
#[derive(Debug, Clone)]
pub struct KsprConfig {
    /// Work in the transformed (`d-1`-dimensional) or original space.
    /// The original space yields the OP-CTA / OLP-CTA variants of Appendix C.
    pub space: Space,
    /// Apply Lemma 2: drop cover-set halfspaces (inconsequential) from every
    /// feasibility test.  Disabling this reproduces the `lp_solve`-only bars
    /// of Figure 17.
    pub use_lemma2: bool,
    /// Cache a witness point per CellTree node and use it to skip feasibility
    /// tests (Section 4.3.2).
    pub use_witness: bool,
    /// Look-ahead bound tier used by LP-CTA.
    pub bound_mode: BoundMode,
    /// Fanout of the query-local aggregate R-tree built over the records that
    /// remain after the dominance-based preprocessing of Section 3.1.
    pub rtree_fanout: usize,
    /// Cache the focal-independent shared preprocessing (k-skyband +
    /// dominance graph) on the engine across `run_batch` calls, keyed by `k`
    /// and patched incrementally on dataset updates.  Disabling it restores
    /// the compute-per-batch behavior (useful to ablate the cache).
    pub cache_shared_prep: bool,
    /// Number of dataset shards the serving front-end (`kspr-serve`)
    /// partitions the dataset into.  `1` (the default) serves every query
    /// through a single [`crate::engine::QueryEngine`]; larger values fan
    /// updates out to per-shard engines and answer queries through a merged
    /// candidate engine.  The plain `QueryEngine` ignores this knob.
    pub shards: usize,
    /// Upper bound on the number of merged candidate engines the serving
    /// front-end caches (one per distinct client `k` between updates).  `k`
    /// is client-supplied, so without a cap a stream cycling `k` values would
    /// retain one full candidate engine (dataset + R-tree + prep cache) per
    /// distinct `k`.  The plain `QueryEngine` ignores this knob.
    pub merged_cache_cap: usize,
    /// Which processing tier answers queries by default: the exact engine
    /// (paper semantics, the default), the Monte-Carlo estimate under an
    /// error budget, or cost-based `Auto` routing between the two.  Consumed
    /// by the `kspr-approx` tier dispatch and the `kspr-serve` front-end;
    /// [`crate::engine::QueryEngine::run`] itself is always exact.
    pub tier: QueryTier,
    /// Simulated I/O cost model (Appendix A).  `None` disables I/O accounting
    /// in the reported statistics.
    pub io_model: Option<IoCostModel>,
    /// Monte-Carlo sample count used when finalized regions need volume
    /// estimates in three or more working dimensions.
    pub volume_samples: usize,
    /// Whether the finalization step (exact geometry of every result cell via
    /// halfspace intersection) is executed.  The paper includes this step in
    /// all reported response times.
    pub finalize: bool,
    /// Number of worker threads a single query may use for intra-query
    /// parallelism (work-stealing CellTree frontier classification).
    ///
    /// `0` (the default) means *auto*: divide the machine's cores evenly
    /// among the queries expected to run concurrently (so an exclusive
    /// single query gets every core, while `run_batch` splits them).  `1`
    /// forces the fully sequential path.  LP-CTA always runs sequentially —
    /// its look-ahead bound reporting is schedule-sensitive — regardless of
    /// this knob.
    pub intra_query_threads: usize,
    /// Maximum number of already-queued updates the serving dispatcher drains
    /// into one standing-query maintenance batch (`Monitor::apply_batch` in
    /// `kspr-monitor`).  The dispatcher never *waits* to fill a batch — it
    /// only coalesces updates that are already in its queue — so `1`
    /// restores strictly per-update maintenance while larger windows let a
    /// burst of updates share classification probes and engine re-runs.  The
    /// plain `QueryEngine` ignores this knob.
    pub monitor_batch_window: usize,
}

impl Default for KsprConfig {
    fn default() -> Self {
        Self {
            space: Space::Transformed,
            use_lemma2: true,
            use_witness: true,
            bound_mode: BoundMode::Fast,
            rtree_fanout: 32,
            cache_shared_prep: true,
            shards: 1,
            merged_cache_cap: 8,
            tier: QueryTier::Exact,
            io_model: None,
            volume_samples: 20_000,
            finalize: true,
            intra_query_threads: 0,
            monitor_batch_window: 32,
        }
    }
}

impl KsprConfig {
    /// Configuration for the original-space variants (OP-CTA / OLP-CTA).
    ///
    /// The fast bounds of Section 6.3 do not apply in the original space
    /// (the min-vector of every cone is the origin), so the bound mode is
    /// capped at [`BoundMode::Group`].
    pub fn original_space() -> Self {
        Self {
            space: Space::Original,
            bound_mode: BoundMode::Group,
            ..Self::default()
        }
    }

    /// Convenience: the default configuration with a specific bound mode.
    pub fn with_bound_mode(mode: BoundMode) -> Self {
        Self {
            bound_mode: mode,
            ..Self::default()
        }
    }

    /// Convenience: disable the finalization step (useful in micro-benchmarks
    /// that isolate the CellTree work).
    pub fn without_finalization(mut self) -> Self {
        self.finalize = false;
        self
    }

    /// Convenience: disable the engine-level shared-prep cache (compute the
    /// batch preprocessing from scratch on every `run_batch` call).
    pub fn without_prep_cache(mut self) -> Self {
        self.cache_shared_prep = false;
        self
    }

    /// Convenience: the default configuration with `shards` dataset shards
    /// (consumed by the `kspr-serve` front-end).
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard is required");
        self.shards = shards;
        self
    }

    /// Convenience: cap the serving front-end's merged-candidate-engine cache
    /// at `cap` entries.
    ///
    /// # Panics
    /// Panics if `cap == 0` (the serving layer always needs one live engine).
    pub fn with_merged_cache_cap(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "the merged cache needs at least one slot");
        self.merged_cache_cap = cap;
        self
    }

    /// Convenience: the default configuration answering queries through
    /// `tier`.
    pub fn with_tier(mut self, tier: QueryTier) -> Self {
        self.tier = tier;
        self
    }

    /// Convenience: set the intra-query worker count (`0` = auto, see
    /// [`KsprConfig::intra_query_threads`]).
    pub fn with_intra_query_threads(mut self, threads: usize) -> Self {
        self.intra_query_threads = threads;
        self
    }

    /// Convenience: set the serving dispatcher's standing-query maintenance
    /// batching window (`1` = strictly per-update maintenance).
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn with_monitor_batch_window(mut self, window: usize) -> Self {
        assert!(window >= 1, "the maintenance batch window needs one slot");
        self.monitor_batch_window = window;
        self
    }

    /// Resolves [`KsprConfig::intra_query_threads`] to a concrete worker
    /// count for one query, given how many queries are expected to run
    /// concurrently (`run` passes 1, `run_batch` the batch width, the
    /// serving dispatcher its in-flight count).
    ///
    /// Auto (`0`) divides the available cores evenly among the concurrent
    /// queries and never grants fewer than one worker.  A worker count of
    /// one means "run sequentially" (no pool is built at all).
    pub fn resolve_intra_workers(&self, concurrent: usize) -> usize {
        if self.intra_query_threads != 0 {
            return self.intra_query_threads;
        }
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        (cores / concurrent.max(1)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configuration_matches_paper_defaults() {
        let c = KsprConfig::default();
        assert_eq!(c.space, Space::Transformed);
        assert!(c.use_lemma2);
        assert!(c.use_witness);
        assert_eq!(c.bound_mode, BoundMode::Fast);
        assert!(c.cache_shared_prep);
        assert!(c.finalize);
        assert_eq!(c.shards, 1, "serving defaults to a single shard");
        assert_eq!(c.merged_cache_cap, 8);
        assert_eq!(c.tier, QueryTier::Exact, "the default tier is exact");
        assert_eq!(
            c.intra_query_threads, 0,
            "intra-query workers default to auto"
        );
        assert_eq!(c.monitor_batch_window, 32);
    }

    #[test]
    fn intra_query_worker_resolution() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let auto = KsprConfig::default();
        assert_eq!(auto.resolve_intra_workers(1), cores);
        assert_eq!(auto.resolve_intra_workers(cores), 1);
        assert_eq!(
            auto.resolve_intra_workers(2 * cores),
            1,
            "auto never grants zero workers"
        );
        let explicit = KsprConfig::default().with_intra_query_threads(4);
        assert_eq!(explicit.resolve_intra_workers(1), 4);
        assert_eq!(
            explicit.resolve_intra_workers(100),
            4,
            "an explicit count is honored regardless of concurrency"
        );
    }

    #[test]
    fn shards_builder() {
        assert_eq!(KsprConfig::default().with_shards(4).shards, 4);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn rejects_zero_shards() {
        let _ = KsprConfig::default().with_shards(0);
    }

    #[test]
    fn merged_cache_cap_builder() {
        assert_eq!(
            KsprConfig::default()
                .with_merged_cache_cap(3)
                .merged_cache_cap,
            3
        );
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn rejects_zero_merged_cache_cap() {
        let _ = KsprConfig::default().with_merged_cache_cap(0);
    }

    #[test]
    fn tier_builder() {
        use crate::approximate::ErrorBudget;
        let budget = ErrorBudget::new(0.1, 0.9);
        let c = KsprConfig::default().with_tier(QueryTier::approximate(budget));
        assert_eq!(c.tier, QueryTier::Approximate { budget });
    }

    #[test]
    fn monitor_batch_window_builder() {
        assert_eq!(
            KsprConfig::default()
                .with_monitor_batch_window(128)
                .monitor_batch_window,
            128
        );
    }

    #[test]
    #[should_panic(expected = "batch window")]
    fn rejects_zero_monitor_batch_window() {
        let _ = KsprConfig::default().with_monitor_batch_window(0);
    }

    #[test]
    fn original_space_config_caps_bound_mode() {
        let c = KsprConfig::original_space();
        assert_eq!(c.space, Space::Original);
        assert_eq!(c.bound_mode, BoundMode::Group);
    }

    #[test]
    fn builder_helpers() {
        let c = KsprConfig::with_bound_mode(BoundMode::Record)
            .without_finalization()
            .without_prep_cache();
        assert_eq!(c.bound_mode, BoundMode::Record);
        assert!(!c.finalize);
        assert!(!c.cache_shared_prep);
    }
}
