//! # kspr-monitor — standing queries over a dynamic kSPR engine
//!
//! A kSPR result is most valuable when it is *watched*: an option's impact
//! regions shift every time a competitor is inserted or deleted.  Re-running
//! the full CellTree pipeline after every update wastes the one thing the
//! dynamic engine already knows — *which* updates can matter.  This crate
//! keeps long-lived query results correct across updates with per-update work
//! that is usually a handful of dominance tests:
//!
//! * [`Monitor`] is a registry of [`StandingQuery`] handles (focal record,
//!   algorithm, `k`, the last [`KsprResult`], and a compact maintenance
//!   state — the focal record's live dominator count).
//! * [`Monitor::apply_insert`] / [`Monitor::apply_delete`] classify every
//!   registered query against the delta record as **unaffected** (the old
//!   result provably equals a fresh run), **patchable** (the new result is
//!   derivable in place: it empties, or a whole-space rank shifts), or
//!   **must-rerun** — and re-run only the last kind.
//! * Queries whose result changed produce [`ResultDelta`] notifications,
//!   which the serving front-end (`kspr-serve`) forwards to subscribers.
//!
//! # Why the classification is sound
//!
//! Write `p` for the focal record, `v` for the delta record and `R` for the
//! set of preference vectors where `p` ranks in the top-`k`.
//!
//! 1. **Ties and records `p` dominates are invisible.**  The Section-3.1
//!    preprocessing removes them before the traversal, so inserting or
//!    deleting one reproduces the previous run exactly.
//! 2. **Inserts never grow `R`.**  `p`'s rank at a preference `w` is one plus
//!    the number of records outscoring `p` at `w`; an insert can only raise
//!    it.  A standing query with an *empty* result therefore stays empty
//!    under any insert.
//! 3. **Dominators of `p` shift ranks uniformly.**  A record dominating `p`
//!    outscores it everywhere, so it only moves the constant rank offset the
//!    engine tracks: once the live dominator count reaches `k` the result is
//!    empty (patched in place), and a *whole-space* result (one region, no
//!    bounding halfspace — the arrangement never split) keeps its single
//!    region with the rank shifted by one (patched in place).  Everything
//!    else re-runs, because the effective `k` of the traversal changed.
//! 4. **Records with `k` live dominators are witnessed away.**  If `v` has at
//!    least `k` live dominators (checked with the MBR-pruned
//!    [`kspr::QueryEngine::count_dominating`] probe — the *skyband witness
//!    property* guarantees at least `k` of them sit in the dataset
//!    k-skyband), then wherever `v` outscores `p`, so do `k` records that
//!    dominate `v` — `p` is already out of the top-`k` there.  Inserting or
//!    deleting `v` leaves `R` unchanged, and inside every result cell `v`'s
//!    hyperplane is on the non-outranking side, so it cannot split a
//!    reported cell: the region decomposition itself is preserved for every
//!    policy whose reporting depends only on the final arrangement (CTA,
//!    P-CTA's pivot reports, the k-skyband baseline).  LP-CTA's *look-ahead
//!    bound* reports are schedule-sensitive — the delta record perturbs the
//!    aggregate R-tree bounds, which may merge or split reported cells even
//!    though the covered area is identical — so for bound-using policies
//!    this shortcut only applies to empty and whole-space results and
//!    everything else re-runs (see [`ExpansionPolicy::use_rank_bounds`]).
//!
//! `monitor_consistency.rs` in the umbrella crate property-tests the whole
//! classifier: under random insert/delete interleavings every maintained
//! result must match a from-scratch engine run, for all CellTree policies,
//! on both the single engine and the sharded serving engine.
//!
//! ```
//! use kspr::{Algorithm, Dataset, KsprConfig, QueryEngine};
//! use kspr_monitor::MonitoredEngine;
//!
//! let dataset = Dataset::new(vec![
//!     vec![0.3, 0.8, 0.8],
//!     vec![0.9, 0.4, 0.4],
//!     vec![0.8, 0.3, 0.4],
//!     vec![0.4, 0.3, 0.6],
//! ]);
//! let mut monitored = MonitoredEngine::new(QueryEngine::new(&dataset, KsprConfig::default()));
//! let q = monitored
//!     .register(Algorithm::LpCta, vec![0.5, 0.5, 0.7], 2)
//!     .unwrap();
//! let before = monitored.result(q).unwrap().num_regions();
//!
//! // A deeply dominated insert is classified away with two dominance tests.
//! let (id, deltas) = monitored.insert(vec![0.2, 0.2, 0.2]);
//! assert!(deltas.is_empty(), "nothing changed, nobody is notified");
//! assert_eq!(monitored.result(q).unwrap().num_regions(), before);
//!
//! let (_, deltas) = monitored.delete(id);
//! assert!(deltas.is_empty());
//! assert!(monitored.unregister(q));
//! ```

use kspr::engine::policy_for;
use kspr::{check_record, Algorithm, IngestError, KsprResult, QueryEngine, QueryStats};
use kspr_spatial::{dominates, RecordId};
use std::collections::BTreeMap;

/// Identifier of a registered standing query (dense, never reused).
pub type QueryId = u64;

/// The engine surface the monitor drives.  Implemented for
/// [`kspr::QueryEngine`] here and for the sharded serving engine in
/// `kspr-serve`.
pub trait MonitorEngine {
    /// The dataset arity.
    fn dim(&self) -> usize;

    /// Runs one query against the current dataset state.
    fn run_query(&self, algorithm: Algorithm, focal: &[f64], k: usize) -> KsprResult;

    /// Number of live records dominating `values`, early-exiting once
    /// `limit` is reached (a return `>= limit` means "at least `limit`").
    fn count_dominating(&self, values: &[f64], limit: usize) -> usize;
}

impl MonitorEngine for QueryEngine {
    fn dim(&self) -> usize {
        self.dataset().dim()
    }

    fn run_query(&self, algorithm: Algorithm, focal: &[f64], k: usize) -> KsprResult {
        self.run(algorithm, focal, k)
    }

    fn count_dominating(&self, values: &[f64], limit: usize) -> usize {
        QueryEngine::count_dominating(self, values, limit)
    }
}

/// Why a standing query could not be registered.
#[derive(Debug, Clone, PartialEq)]
pub enum RegisterError {
    /// `k` must be at least 1.
    InvalidK,
    /// The focal record violates the ingest rules (arity / finiteness).
    Focal(IngestError),
    /// Only the CellTree policies (CTA, P-CTA, LP-CTA, k-skyband) expose the
    /// classification hooks; the sweep baselines (RTOPK, iMaxRank) do not.
    UnsupportedAlgorithm,
}

impl std::fmt::Display for RegisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegisterError::InvalidK => write!(f, "k must be at least 1"),
            RegisterError::Focal(err) => write!(f, "focal record {err}"),
            RegisterError::UnsupportedAlgorithm => {
                write!(
                    f,
                    "the algorithm does not support standing-query maintenance"
                )
            }
        }
    }
}

impl std::error::Error for RegisterError {}

/// How the monitor maintained a standing query for one update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateClass {
    /// The old result provably equals a fresh run; nothing was touched.
    Unaffected,
    /// The new result was derived in place (result emptied, or a
    /// whole-space rank shifted) without running the engine.
    Patched,
    /// The query was re-run through the engine.
    Rerun,
}

/// Classification counters across all updates and standing queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Standing queries ever registered.
    pub registered: u64,
    /// (update, query) pairs classified as unaffected.
    pub unaffected: u64,
    /// (update, query) pairs patched in place.
    pub patched: u64,
    /// (update, query) pairs that re-ran the engine.
    pub reruns: u64,
}

impl MonitorStats {
    /// Total (update, query) classification events.
    pub fn classified(&self) -> u64 {
        self.unaffected + self.patched + self.reruns
    }
}

/// A change notification for one standing query after one update.
///
/// Unaffected and patched-without-change maintenance is silent.  A delta is
/// produced whenever the rank signature moved — and for **every** re-run,
/// even one whose region count and rank signature happen to match: a re-run
/// can change region *geometry* without moving either summary, and silence
/// would leave subscribers holding stale regions with no way to notice.
/// Compare `ranks_before`/`ranks_after` (or `regions_added` etc.) to tell a
/// summarized change from a possibly-geometry-only refresh.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultDelta {
    /// The standing query that changed.
    pub query: QueryId,
    /// How the new result was obtained.
    pub class: UpdateClass,
    /// Region count before the update.
    pub regions_before: usize,
    /// Region count after the update.
    pub regions_after: usize,
    /// Sorted region ranks before the update.
    pub ranks_before: Vec<usize>,
    /// Sorted region ranks after the update.
    pub ranks_after: Vec<usize>,
}

impl ResultDelta {
    /// Regions gained by the update (0 when regions were lost).
    pub fn regions_added(&self) -> usize {
        self.regions_after.saturating_sub(self.regions_before)
    }

    /// Regions lost to the update (0 when regions were gained).
    pub fn regions_removed(&self) -> usize {
        self.regions_before.saturating_sub(self.regions_after)
    }

    /// True iff some surviving region's rank shifted (score-order change)
    /// beyond pure adds/removes.
    pub fn ranks_shifted(&self) -> bool {
        self.regions_before == self.regions_after && self.ranks_before != self.ranks_after
    }
}

/// One registered long-lived query: the request, its latest result, and the
/// maintenance state the per-update classifier needs.
#[derive(Debug, Clone)]
pub struct StandingQuery {
    algorithm: Algorithm,
    focal: Vec<f64>,
    k: usize,
    /// Exact number of live records dominating the focal record, maintained
    /// by ±1 bookkeeping on every classified update.
    focal_dominators: usize,
    result: KsprResult,
}

impl StandingQuery {
    /// The algorithm the query runs under.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The focal record.
    pub fn focal(&self) -> &[f64] {
        &self.focal
    }

    /// The rank threshold.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The maintained result (always equal to a fresh run at the current
    /// dataset state, up to per-query statistics).
    pub fn result(&self) -> &KsprResult {
        &self.result
    }

    /// The maintained live dominator count of the focal record.
    pub fn focal_dominators(&self) -> usize {
        self.focal_dominators
    }

    /// Replaces the result with an empty one (the focal record left the
    /// top-`k` everywhere).
    fn set_empty(&mut self) {
        self.result = KsprResult::empty(self.result.space, QueryStats::new());
    }
}

/// Which side of an update is being classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UpdateKind {
    Insert,
    Delete,
}

/// The standing-query registry.  Generic over the engine only at the method
/// level, so one monitor type serves both the single [`QueryEngine`] and the
/// sharded serving engine.
#[derive(Debug, Default)]
pub struct Monitor {
    /// Registered queries in id order (deterministic notification order).
    queries: BTreeMap<QueryId, StandingQuery>,
    next_id: QueryId,
    stats: MonitorStats,
}

impl Monitor {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered standing queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True iff no standing query is registered.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Classification counters.
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// The standing query with the given id, if registered.
    pub fn query(&self, id: QueryId) -> Option<&StandingQuery> {
        self.queries.get(&id)
    }

    /// The maintained result of a standing query, if registered.
    pub fn result(&self, id: QueryId) -> Option<&KsprResult> {
        self.queries.get(&id).map(|q| q.result())
    }

    /// All registered queries, in id order.
    pub fn queries(&self) -> impl Iterator<Item = (QueryId, &StandingQuery)> {
        self.queries.iter().map(|(&id, q)| (id, q))
    }

    /// Registers a standing query: validates the request, runs it once, and
    /// snapshots the maintenance state (exact focal dominator count).
    ///
    /// The engine must not change between this call and the next
    /// `apply_insert` / `apply_delete` without the monitor seeing the update.
    pub fn register<E: MonitorEngine>(
        &mut self,
        engine: &E,
        algorithm: Algorithm,
        focal: Vec<f64>,
        k: usize,
    ) -> Result<QueryId, RegisterError> {
        if k == 0 {
            return Err(RegisterError::InvalidK);
        }
        check_record(&focal, Some(engine.dim())).map_err(RegisterError::Focal)?;
        if policy_for(algorithm).is_none() {
            return Err(RegisterError::UnsupportedAlgorithm);
        }
        let result = engine.run_query(algorithm, &focal, k);
        let focal_dominators = engine.count_dominating(&focal, usize::MAX);
        let id = self.next_id;
        self.next_id += 1;
        self.queries.insert(
            id,
            StandingQuery {
                algorithm,
                focal,
                k,
                focal_dominators,
                result,
            },
        );
        self.stats.registered += 1;
        Ok(id)
    }

    /// Drops a standing query and its maintenance state; returns `false` if
    /// the id was never registered (or already unregistered).
    pub fn unregister(&mut self, id: QueryId) -> bool {
        self.queries.remove(&id).is_some()
    }

    /// Drops every standing query and its maintenance state (the counters
    /// survive).  Serving layers use this to invalidate the registry after a
    /// failure that may have left a maintenance pass half-applied — stale
    /// bookkeeping must never classify future updates.
    pub fn clear(&mut self) {
        self.queries.clear();
    }

    /// Maintains every standing query for a record just **inserted** into the
    /// engine.  Call *after* the engine applied the insert, with the inserted
    /// values.  Returns one [`ResultDelta`] per query whose result changed.
    pub fn apply_insert<E: MonitorEngine>(
        &mut self,
        engine: &E,
        values: &[f64],
    ) -> Vec<ResultDelta> {
        self.apply_update(engine, values, UpdateKind::Insert)
    }

    /// Maintains every standing query for a record just **deleted** from the
    /// engine.  Call *after* the engine applied the delete, with the removed
    /// record's values (see [`kspr::QueryEngine::delete_returning`]).
    pub fn apply_delete<E: MonitorEngine>(
        &mut self,
        engine: &E,
        values: &[f64],
    ) -> Vec<ResultDelta> {
        self.apply_update(engine, values, UpdateKind::Delete)
    }

    fn apply_update<E: MonitorEngine>(
        &mut self,
        engine: &E,
        values: &[f64],
        kind: UpdateKind,
    ) -> Vec<ResultDelta> {
        // The dominator-count probe depends only on the delta record and the
        // largest registered k, so it is shared across all queries and only
        // computed if some query actually needs it.
        let limit = self.queries.values().map(|q| q.k).max().unwrap_or(0);
        let mut delta_dominators: Option<usize> = None;
        let mut deltas = Vec::new();
        let stats = &mut self.stats;
        for (&id, q) in self.queries.iter_mut() {
            let (class, before) =
                Self::maintain(q, engine, values, kind, &mut delta_dominators, limit);
            match class {
                UpdateClass::Unaffected => stats.unaffected += 1,
                UpdateClass::Patched => stats.patched += 1,
                UpdateClass::Rerun => stats.reruns += 1,
            }
            // A snapshot exists only for the classes that touch the result;
            // the unaffected fast path stays allocation-free.  Reruns always
            // notify — an identical rank signature does not prove identical
            // region geometry (see the ResultDelta docs).
            if let Some((regions_before, ranks_before)) = before {
                let ranks_after = q.result.rank_signature();
                if ranks_before != ranks_after || class == UpdateClass::Rerun {
                    deltas.push(ResultDelta {
                        query: id,
                        class,
                        regions_before,
                        regions_after: q.result.num_regions(),
                        ranks_before,
                        ranks_after,
                    });
                }
            }
        }
        deltas
    }

    /// Pre-mutation snapshot of a standing result: region count and rank
    /// signature, taken just before a patch or rerun touches it.
    fn snapshot(q: &StandingQuery) -> (usize, Vec<usize>) {
        (q.result.num_regions(), q.result.rank_signature())
    }

    /// Classifies (and maintains) one standing query for one update,
    /// returning the class together with the pre-mutation snapshot (`None`
    /// when the result was provably untouched).  The case analysis is the
    /// module-docs argument, in order.
    fn maintain<E: MonitorEngine>(
        q: &mut StandingQuery,
        engine: &E,
        values: &[f64],
        kind: UpdateKind,
        delta_dominators: &mut Option<usize>,
        limit: usize,
    ) -> (UpdateClass, Option<(usize, Vec<usize>)>) {
        let dominates_focal = dominates(values, &q.focal);
        // Ties and records the focal record dominates are removed by the
        // Section-3.1 preprocessing; updating one reproduces the old run.
        let invisible = values == q.focal.as_slice() || dominates(&q.focal, values);
        if dominates_focal {
            match kind {
                UpdateKind::Insert => q.focal_dominators += 1,
                UpdateKind::Delete => {
                    debug_assert!(q.focal_dominators > 0, "dominator count underflow");
                    q.focal_dominators = q.focal_dominators.saturating_sub(1);
                }
            }
        }
        if invisible {
            return (UpdateClass::Unaffected, None);
        }
        if kind == UpdateKind::Insert && q.result.is_empty() {
            // Inserts only push the focal record's rank up: empty stays empty.
            return (UpdateClass::Unaffected, None);
        }
        if dominates_focal {
            return Self::maintain_dominator(q, engine, kind);
        }

        // Incomparable delta record: the skyband witness test.  With at least
        // k live dominators, the delta record cannot change the result area —
        // and for policies without schedule-sensitive bound reports it cannot
        // change the region decomposition either.
        let dominators =
            *delta_dominators.get_or_insert_with(|| engine.count_dominating(values, limit));
        if dominators >= q.k {
            let decomposition_stable = policy_for(q.algorithm)
                .is_some_and(|policy| !policy.use_rank_bounds())
                || q.result.is_empty()
                || q.result.is_whole_space();
            if decomposition_stable {
                return (UpdateClass::Unaffected, None);
            }
        }
        Self::rerun(q, engine)
    }

    /// The delta record dominates the focal record: the rank offset shifts
    /// uniformly, so emptiness and whole-space results patch in place.
    fn maintain_dominator<E: MonitorEngine>(
        q: &mut StandingQuery,
        engine: &E,
        kind: UpdateKind,
    ) -> (UpdateClass, Option<(usize, Vec<usize>)>) {
        match kind {
            UpdateKind::Insert => {
                if q.focal_dominators >= q.k {
                    // At least k records now outscore the focal record
                    // everywhere; a fresh run short-circuits to Empty.
                    let before = Self::snapshot(q);
                    q.set_empty();
                    return (UpdateClass::Patched, Some(before));
                }
                if q.result.is_whole_space() {
                    let before = Self::snapshot(q);
                    let rank = q.result.regions[0].rank + 1;
                    if rank > q.k {
                        q.set_empty();
                    } else {
                        q.result.regions[0].rank = rank;
                    }
                    return (UpdateClass::Patched, Some(before));
                }
                Self::rerun(q, engine)
            }
            UpdateKind::Delete => {
                if q.focal_dominators >= q.k {
                    // Still at least k everywhere-dominators: the result was
                    // and remains empty.
                    debug_assert!(q.result.is_empty());
                    return (UpdateClass::Unaffected, None);
                }
                if q.result.is_whole_space() {
                    // A whole-space rank always counts its dominators, so it
                    // is at least 2 when one of them is being removed.
                    debug_assert!(q.result.regions[0].rank >= 2);
                    let before = Self::snapshot(q);
                    q.result.regions[0].rank = q.result.regions[0].rank.saturating_sub(1).max(1);
                    return (UpdateClass::Patched, Some(before));
                }
                Self::rerun(q, engine)
            }
        }
    }

    fn rerun<E: MonitorEngine>(
        q: &mut StandingQuery,
        engine: &E,
    ) -> (UpdateClass, Option<(usize, Vec<usize>)>) {
        let before = Self::snapshot(q);
        q.result = engine.run_query(q.algorithm, &q.focal, q.k);
        (UpdateClass::Rerun, Some(before))
    }
}

/// True iff the update record `values` (an insert that just landed, or a
/// delete that was just applied — probe the engine **after** the update
/// either way) provably leaves the focal record's top-`k` membership
/// indicator unchanged at *every* preference vector — and with it the true
/// market impact.
///
/// This is the standing-query classifier's witness logic, split out for
/// consumers that maintain a scalar instead of a region decomposition (the
/// approximate standing queries of `kspr-serve`): an unchanged indicator
/// means a previously drawn Monte-Carlo estimate — and its confidence
/// interval — remains valid for the *current* dataset state, so the
/// estimate need not be redrawn.  Two sufficient conditions, each from the
/// module-docs argument:
///
/// * the focal record dominates (or ties) the update record — its score
///   never beats the focal score, so the Section-3.1 preprocessing never
///   sees it;
/// * the update record has at least `k` live dominators (one MBR-pruned
///   [`MonitorEngine::count_dominating`] probe) — wherever it outscores the
///   focal record, its `k` dominators already do, so the focal record's
///   in/out-of-top-`k` status is the same with and without it.  (For a
///   delete, the probe runs against the post-delete state, which is exactly
///   the record set the witnesses must survive in.)
///
/// A `false` return means "possibly changed", not "changed": the caller
/// re-runs or re-estimates.
pub fn update_preserves_impact<E: MonitorEngine + ?Sized>(
    engine: &E,
    focal: &[f64],
    k: usize,
    values: &[f64],
) -> bool {
    values == focal || dominates(focal, values) || engine.count_dominating(values, k) >= k
}

/// A [`QueryEngine`] bundled with a [`Monitor`]: updates go through one call
/// that applies them to the engine *and* maintains every standing query.
pub struct MonitoredEngine {
    engine: QueryEngine,
    monitor: Monitor,
}

impl MonitoredEngine {
    /// Wraps an engine with an empty standing-query registry.
    pub fn new(engine: QueryEngine) -> Self {
        Self {
            engine,
            monitor: Monitor::new(),
        }
    }

    /// The underlying engine (for ad-hoc queries).
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// The standing-query registry.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Registers a standing query (see [`Monitor::register`]).
    pub fn register(
        &mut self,
        algorithm: Algorithm,
        focal: Vec<f64>,
        k: usize,
    ) -> Result<QueryId, RegisterError> {
        self.monitor.register(&self.engine, algorithm, focal, k)
    }

    /// Drops a standing query (see [`Monitor::unregister`]).
    pub fn unregister(&mut self, id: QueryId) -> bool {
        self.monitor.unregister(id)
    }

    /// The maintained result of a standing query.
    pub fn result(&self, id: QueryId) -> Option<&KsprResult> {
        self.monitor.result(id)
    }

    /// Inserts a record into the engine and maintains every standing query;
    /// returns the new record id and the change notifications.
    pub fn insert(&mut self, values: Vec<f64>) -> (RecordId, Vec<ResultDelta>) {
        let id = self.engine.insert(values.clone());
        let deltas = self.monitor.apply_insert(&self.engine, &values);
        (id, deltas)
    }

    /// Deletes a record from the engine and maintains every standing query;
    /// returns whether a live record was removed and the change
    /// notifications.
    pub fn delete(&mut self, id: RecordId) -> (bool, Vec<ResultDelta>) {
        match self.engine.delete_returning(id) {
            Some(values) => {
                let deltas = self.monitor.apply_delete(&self.engine, &values);
                (true, deltas)
            }
            None => (false, Vec::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspr::{Dataset, KsprConfig};

    fn engine(raw: Vec<Vec<f64>>) -> QueryEngine {
        QueryEngine::new(&Dataset::new(raw), KsprConfig::default())
    }

    fn figure1() -> QueryEngine {
        engine(vec![
            vec![0.3, 0.8, 0.8],
            vec![0.9, 0.4, 0.4],
            vec![0.8, 0.3, 0.4],
            vec![0.4, 0.3, 0.6],
        ])
    }

    #[test]
    fn update_preserves_impact_matches_a_brute_force_indicator_check() {
        use kspr::naive;
        use kspr::PreferenceSpace;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(71);
        let d = 3;
        let raw: Vec<Vec<f64>> = (0..60)
            .map(|_| (0..d).map(|_| rng.gen_range(0.05..0.95)).collect())
            .collect();
        let k = 4;
        let focal = vec![0.7, 0.65, 0.7];
        let space = PreferenceSpace::transformed(d);
        let probes = naive::sample_weights(&space, 400, 5);

        // For a spread of candidate update records, whenever the classifier
        // says "preserved", inserting the record must leave the top-k
        // indicator unchanged on every probe weight.
        let mut preserved_some = false;
        let mut changed_some = false;
        for seed in 0..20 {
            let mut urng = SmallRng::seed_from_u64(1000 + seed);
            let values: Vec<f64> = (0..d).map(|_| urng.gen_range(0.0..1.0)).collect();
            let mut with = raw.clone();
            with.push(values.clone());
            let post = engine(with.clone());
            if update_preserves_impact(&post, &focal, k, &values) {
                preserved_some = true;
                for w in &probes {
                    let full = space.to_full_weight(w);
                    assert_eq!(
                        naive::is_top_k(&raw, &focal, &full, k),
                        naive::is_top_k(&with, &focal, &full, k),
                        "preserved-classified insert changed the indicator at {w:?}"
                    );
                }
            } else {
                changed_some = true;
            }
        }
        assert!(preserved_some, "some random update must classify away");
        assert!(changed_some, "some random update must not classify away");

        // The explicit cases: ties and focal-dominated records are invisible;
        // a dominator of the focal record with < k dominators is not.
        let post = engine(raw.clone());
        assert!(update_preserves_impact(&post, &focal, k, &focal));
        assert!(update_preserves_impact(&post, &focal, k, &[0.1, 0.1, 0.1]));
        assert!(!update_preserves_impact(
            &post,
            &focal,
            k,
            &[0.99, 0.99, 0.99]
        ));
    }

    /// The maintained result must match a fresh run at the current state.
    fn assert_fresh(monitored: &MonitoredEngine, id: QueryId, ctx: &str) {
        let q = monitored.monitor().query(id).expect("registered");
        let fresh = monitored.engine().run(q.algorithm(), q.focal(), q.k());
        assert_eq!(
            q.result().num_regions(),
            fresh.num_regions(),
            "{ctx}: region count"
        );
        assert_eq!(
            q.result().rank_signature(),
            fresh.rank_signature(),
            "{ctx}: ranks"
        );
    }

    #[test]
    fn register_validates_the_request() {
        let engine = figure1();
        let mut monitor = Monitor::new();
        assert_eq!(
            monitor.register(&engine, Algorithm::LpCta, vec![0.5, 0.5, 0.7], 0),
            Err(RegisterError::InvalidK)
        );
        assert_eq!(
            monitor.register(&engine, Algorithm::LpCta, vec![0.5, 0.5], 2),
            Err(RegisterError::Focal(IngestError::ArityMismatch {
                expected: 3,
                got: 2
            }))
        );
        // (NaN payloads are not `==`-comparable; match on the variant.)
        assert!(matches!(
            monitor.register(&engine, Algorithm::LpCta, vec![0.5, f64::NAN, 0.7], 2),
            Err(RegisterError::Focal(IngestError::NonFinite { .. }))
        ));
        for alg in [Algorithm::Rtopk, Algorithm::IMaxRank] {
            assert_eq!(
                monitor.register(&engine, alg, vec![0.5, 0.5, 0.7], 2),
                Err(RegisterError::UnsupportedAlgorithm)
            );
        }
        assert!(monitor.is_empty());
        assert_eq!(monitor.stats().registered, 0);

        let id = monitor
            .register(&engine, Algorithm::LpCta, vec![0.5, 0.5, 0.7], 2)
            .expect("valid request");
        assert_eq!(monitor.len(), 1);
        assert_eq!(monitor.query(id).unwrap().k(), 2);
        assert_eq!(monitor.query(id).unwrap().focal_dominators(), 0);
        assert!(monitor.result(id).is_some());
    }

    #[test]
    fn unregister_frees_the_maintenance_state() {
        let engine = figure1();
        let mut monitor = Monitor::new();
        let a = monitor
            .register(&engine, Algorithm::LpCta, vec![0.5, 0.5, 0.7], 2)
            .unwrap();
        let b = monitor
            .register(&engine, Algorithm::KSkyband, vec![0.6, 0.6, 0.5], 3)
            .unwrap();
        assert_ne!(a, b, "ids are unique");
        assert_eq!(monitor.len(), 2);
        assert!(monitor.unregister(a));
        assert!(!monitor.unregister(a), "double unregister fails");
        assert_eq!(monitor.len(), 1);
        assert!(monitor.unregister(b));
        assert!(monitor.is_empty());
        assert!(monitor.result(a).is_none());
        assert_eq!(monitor.stats().registered, 2, "counters survive");
    }

    #[test]
    fn invisible_updates_are_classified_without_probing() {
        let mut monitored = MonitoredEngine::new(figure1());
        let q = monitored
            .register(Algorithm::LpCta, vec![0.5, 0.5, 0.7], 2)
            .unwrap();
        // Dominated by the focal record, and an exact tie: both invisible.
        for values in [vec![0.1, 0.1, 0.1], vec![0.5, 0.5, 0.7]] {
            let (id, deltas) = monitored.insert(values);
            assert!(deltas.is_empty());
            assert_fresh(&monitored, q, "after invisible insert");
            let (removed, deltas) = monitored.delete(id);
            assert!(removed);
            assert!(deltas.is_empty());
            assert_fresh(&monitored, q, "after invisible delete");
        }
        let stats = monitored.monitor().stats();
        assert_eq!(stats.unaffected, 4);
        assert_eq!(stats.patched + stats.reruns, 0);
    }

    #[test]
    fn dominator_inserts_empty_the_result_in_place() {
        let mut monitored = MonitoredEngine::new(figure1());
        let q = monitored
            .register(Algorithm::LpCta, vec![0.5, 0.5, 0.7], 1)
            .unwrap();
        assert!(monitored.result(q).unwrap().num_regions() >= 1);
        // One dominator reaches k = 1: the result empties without a rerun.
        let (id, deltas) = monitored.insert(vec![0.6, 0.6, 0.8]);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].class, UpdateClass::Patched);
        assert_eq!(deltas[0].regions_after, 0);
        assert!(deltas[0].regions_removed() >= 1);
        assert!(monitored.result(q).unwrap().is_empty());
        assert_fresh(&monitored, q, "after dominator insert");
        // While empty, any further insert is unaffected.
        let (other, deltas) = monitored.insert(vec![0.7, 0.2, 0.9]);
        assert!(deltas.is_empty());
        assert_fresh(&monitored, q, "insert while empty");
        monitored.delete(other);
        assert_fresh(&monitored, q, "delete while empty");
        // Deleting the dominator re-runs (k_effective changed back) and
        // restores the original regions.
        let (_, deltas) = monitored.delete(id);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].class, UpdateClass::Rerun);
        assert!(deltas[0].regions_added() >= 1);
        assert_fresh(&monitored, q, "after dominator delete");
        assert_eq!(monitored.monitor().query(q).unwrap().focal_dominators(), 0);
    }

    #[test]
    fn whole_space_results_patch_their_rank() {
        // Every record is dominated by the focal record: whole space, rank 1.
        let mut monitored = MonitoredEngine::new(engine(vec![vec![0.2, 0.2], vec![0.3, 0.1]]));
        let q = monitored
            .register(Algorithm::Pcta, vec![0.8, 0.8], 3)
            .unwrap();
        assert!(monitored.result(q).unwrap().is_whole_space());
        assert_eq!(monitored.result(q).unwrap().rank_signature(), vec![1]);

        // Dominators shift the uniform rank in place, one per update.
        let (a, deltas) = monitored.insert(vec![0.9, 0.9]);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].class, UpdateClass::Patched);
        assert!(deltas[0].ranks_shifted());
        assert_eq!(monitored.result(q).unwrap().rank_signature(), vec![2]);
        assert_fresh(&monitored, q, "after first dominator");

        let (b, deltas) = monitored.insert(vec![0.95, 0.95]);
        assert_eq!(deltas[0].class, UpdateClass::Patched);
        assert_eq!(monitored.result(q).unwrap().rank_signature(), vec![3]);
        assert_fresh(&monitored, q, "after second dominator");

        // A third dominator pushes the rank past k: patched to empty.
        let (c, deltas) = monitored.insert(vec![0.99, 0.99]);
        assert_eq!(deltas[0].class, UpdateClass::Patched);
        assert!(monitored.result(q).unwrap().is_empty());
        assert_fresh(&monitored, q, "rank pushed past k");

        // Deleting them walks the rank back down, patched where whole-space.
        monitored.delete(c);
        assert_fresh(&monitored, q, "after deleting third dominator");
        let (_, deltas) = monitored.delete(b);
        assert_eq!(
            deltas[0].class,
            UpdateClass::Patched,
            "whole-space rank-down"
        );
        assert_eq!(monitored.result(q).unwrap().rank_signature(), vec![2]);
        assert_fresh(&monitored, q, "after deleting second dominator");
        monitored.delete(a);
        assert_eq!(monitored.result(q).unwrap().rank_signature(), vec![1]);
        assert_fresh(&monitored, q, "after deleting first dominator");
    }

    #[test]
    fn witnessed_updates_are_unaffected_for_schedule_invariant_policies() {
        // A focal record with a non-trivial result under P-CTA (no bound
        // reports, so the witness shortcut applies to bounded results too).
        let mut monitored = MonitoredEngine::new(figure1());
        let q = monitored
            .register(Algorithm::Pcta, vec![0.5, 0.5, 0.7], 3)
            .unwrap();
        assert!(monitored.result(q).unwrap().num_regions() >= 1);
        let before = monitored.monitor().stats();
        // (0.35, 0.25, 0.35) is dominated by records 0, 3 and the focal
        // record... the focal-dominated case is invisible; use a record that
        // is incomparable with the focal but deeply dominated by the dataset:
        // (0.25, 0.75, 0.5) is incomparable with (0.5, 0.5, 0.7) and
        // dominated by (0.3, 0.8, 0.8) only — so pick k = 1.
        let mut cheap = MonitoredEngine::new(figure1());
        let q1 = cheap
            .register(Algorithm::Pcta, vec![0.5, 0.5, 0.7], 1)
            .unwrap();
        let (id, deltas) = cheap.insert(vec![0.25, 0.75, 0.5]);
        assert!(deltas.is_empty());
        assert_eq!(cheap.monitor().stats().unaffected, 1);
        assert_eq!(cheap.monitor().stats().reruns, 0);
        assert_fresh(&cheap, q1, "witnessed insert");
        let (_, deltas) = cheap.delete(id);
        assert!(deltas.is_empty());
        assert_eq!(cheap.monitor().stats().unaffected, 2);
        assert_fresh(&cheap, q1, "witnessed delete");

        // The k = 3 P-CTA query has no 3-dominator witness for this record:
        // it must re-run (and agree with a fresh run).
        let (_, _) = monitored.insert(vec![0.25, 0.75, 0.5]);
        let after = monitored.monitor().stats();
        assert_eq!(after.reruns, before.reruns + 1);
        assert_fresh(&monitored, q, "unwitnessed insert reran");
    }

    #[test]
    fn bound_using_policies_rerun_unless_empty_or_whole_space() {
        let mut monitored = MonitoredEngine::new(figure1());
        let q = monitored
            .register(Algorithm::LpCta, vec![0.5, 0.5, 0.7], 1)
            .unwrap();
        assert!(!monitored.result(q).unwrap().is_empty());
        assert!(!monitored.result(q).unwrap().is_whole_space());
        // Incomparable, witnessed by its one dominator (k = 1) — but LP-CTA's
        // bound reports are schedule-sensitive, so a bounded result re-runs.
        let (_, _) = monitored.insert(vec![0.25, 0.75, 0.5]);
        assert_eq!(monitored.monitor().stats().reruns, 1);
        assert_fresh(&monitored, q, "lp-cta witnessed insert");
    }

    #[test]
    fn monitored_engine_matches_fresh_runs_under_random_updates() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(2024);
        let d = 3;
        let raw: Vec<Vec<f64>> = (0..60)
            .map(|_| (0..d).map(|_| rng.gen_range(0.05..0.95)).collect())
            .collect();
        let mut monitored = MonitoredEngine::new(engine(raw));
        let mut ids = Vec::new();
        for (alg, k) in [
            (Algorithm::Cta, 2),
            (Algorithm::Pcta, 3),
            (Algorithm::LpCta, 2),
            (Algorithm::KSkyband, 3),
        ] {
            let focal: Vec<f64> = (0..d).map(|_| rng.gen_range(0.3..0.9)).collect();
            ids.push(monitored.register(alg, focal, k).unwrap());
        }
        let mut live: Vec<RecordId> = (0..60).collect();
        for step in 0..40 {
            if step % 3 == 0 && live.len() > 5 {
                let victim = live.swap_remove(rng.gen_range(0..live.len()));
                let (removed, _) = monitored.delete(victim);
                assert!(removed);
            } else {
                let values: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..1.0)).collect();
                let (id, _) = monitored.insert(values);
                live.push(id);
            }
            for &q in &ids {
                assert_fresh(&monitored, q, &format!("step {step}"));
            }
        }
        let stats = monitored.monitor().stats();
        assert_eq!(stats.classified(), 40 * 4);
        assert!(
            stats.unaffected > 0,
            "some updates must classify away cheaply: {stats:?}"
        );
    }
}
