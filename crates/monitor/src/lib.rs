//! # kspr-monitor — standing queries over a dynamic kSPR engine
//!
//! A kSPR result is most valuable when it is *watched*: an option's impact
//! regions shift every time a competitor is inserted or deleted.  Re-running
//! the full CellTree pipeline after every update wastes the one thing the
//! dynamic engine already knows — *which* updates can matter.  This crate
//! keeps long-lived query results correct across updates with per-update work
//! that is usually a handful of dominance tests:
//!
//! * [`Monitor`] is a registry of [`StandingQuery`] handles (focal record,
//!   algorithm, `k`, the last [`KsprResult`], and a compact maintenance
//!   state — the focal record's live dominator count).
//! * [`Monitor::apply_insert`] / [`Monitor::apply_delete`] classify every
//!   registered query against the delta record as **unaffected** (the old
//!   result provably equals a fresh run), **patchable** (the new result is
//!   derivable in place: it empties, or a whole-space rank shifts), or
//!   **must-rerun** — and re-run only the last kind.
//! * Queries whose result changed produce [`ResultDelta`] notifications,
//!   which the serving front-end (`kspr-serve`) forwards to subscribers.
//!
//! # Subscription scale: the registry index and batched maintenance
//!
//! Classifying every update against every registered query is an
//! update×registry product — the serving bottleneck once subscriptions reach
//! the tens of thousands.  Two mechanisms make per-update work sublinear in
//! the registry size:
//!
//! * **The spatial registry index.**  Focal points are kept in their own
//!   [`kspr_spatial::AggregateRTree`] alongside a `k`-grouped id map.  For an
//!   update record `v` only two slices of the registry can possibly change
//!   state: the queries whose focal record `v` dominates (found with the
//!   MBR-pruned dominated-focal probe — their dominator bookkeeping shifts),
//!   and the queries whose `k` exceeds `v`'s live dominator count (the
//!   witness cut: one shared [`MonitorEngine::count_dominating`] probe, then
//!   a range scan of the `k`-index).  Every other query is **provably
//!   unaffected without being visited** — its focal record either dominates
//!   or ties `v` (invisible by Section-3.1 preprocessing) or is incomparable
//!   with a `k`-witnessed `v` (the skyband witness argument below) — and is
//!   accounted in bulk ([`MonitorStats::index_pruned`]).  A full-scan mode
//!   ([`Monitor::full_scan`]) is kept for differential testing.
//! * **Batched maintenance.**  [`Monitor::apply_batch`] classifies a whole
//!   drained update stream in **one** pass per affected query: per-update
//!   probes are computed once and shared across all queries, per-query state
//!   walks the batch in order, and at most one engine re-run happens per
//!   query per batch no matter how many updates demanded one
//!   ([`MonitorStats::engine_runs`] vs [`MonitorStats::reruns`]).  One
//!   coalesced [`ResultDelta`] per query summarises the whole batch.
//!
//! Batched probes run against the **post-batch** engine state, which is
//! sound: a query is only retained when every non-invisible update in the
//! batch is witnessed by `k` live dominators at the final state, and those
//! witnesses always include `k` records that were present *throughout* the
//! batch.  (Witnesses that were themselves inserted in the batch are in turn
//! witnessed, so a maximal such witness under the dominance order has all its
//! `k` dominators in the untouched core — and they transitively witness the
//! original update.)
//!
//! # Why the classification is sound
//!
//! Write `p` for the focal record, `v` for the delta record and `R` for the
//! set of preference vectors where `p` ranks in the top-`k`.
//!
//! 1. **Ties and records `p` dominates are invisible.**  The Section-3.1
//!    preprocessing removes them before the traversal, so inserting or
//!    deleting one reproduces the previous run exactly.
//! 2. **Inserts never grow `R`.**  `p`'s rank at a preference `w` is one plus
//!    the number of records outscoring `p` at `w`; an insert can only raise
//!    it.  A standing query with an *empty* result therefore stays empty
//!    under any insert.
//! 3. **Dominators of `p` shift ranks uniformly.**  A record dominating `p`
//!    outscores it everywhere, so it only moves the constant rank offset the
//!    engine tracks: once the live dominator count reaches `k` the result is
//!    empty (patched in place), and a *whole-space* result (one region, no
//!    bounding halfspace — the arrangement never split) keeps its single
//!    region with the rank shifted by one (patched in place).  Everything
//!    else re-runs, because the effective `k` of the traversal changed.
//! 4. **Records with `k` live dominators are witnessed away.**  If `v` has at
//!    least `k` live dominators (checked with the MBR-pruned
//!    [`kspr::QueryEngine::count_dominating`] probe — the *skyband witness
//!    property* guarantees at least `k` of them sit in the dataset
//!    k-skyband), then wherever `v` outscores `p`, so do `k` records that
//!    dominate `v` — `p` is already out of the top-`k` there.  Inserting or
//!    deleting `v` leaves `R` unchanged, and inside every result cell `v`'s
//!    hyperplane is on the non-outranking side, so it cannot split a
//!    reported cell: the region decomposition itself is preserved for every
//!    policy.  LP-CTA's *look-ahead bound* reports read aggregate R-tree
//!    bounds a witnessed record could still perturb — but the engine
//!    restricts bound-using traversals to the witness skyband of the
//!    competitors (`restrict_to_witness_skyband` in `kspr-core`), and a
//!    `k`-witnessed record is provably outside that skyband both before and
//!    after its own update, so even the bound reports are bit-identical.
//!    This is the **cell-wise LP-CTA patch**: a witnessed update touches no
//!    retained cell's cover set, so zero cells re-derive; the bounds are
//!    only invalidated — forcing the full re-run — when the update is
//!    unwitnessed or shifts the effective `k`.
//!
//! `monitor_consistency.rs` in the umbrella crate property-tests the whole
//! classifier: under random insert/delete interleavings every maintained
//! result must match a from-scratch engine run, for all CellTree policies,
//! on both the single engine and the sharded serving engine.
//!
//! ```
//! use kspr::{Algorithm, Dataset, KsprConfig, QueryEngine};
//! use kspr_monitor::MonitoredEngine;
//!
//! let dataset = Dataset::new(vec![
//!     vec![0.3, 0.8, 0.8],
//!     vec![0.9, 0.4, 0.4],
//!     vec![0.8, 0.3, 0.4],
//!     vec![0.4, 0.3, 0.6],
//! ]);
//! let mut monitored = MonitoredEngine::new(QueryEngine::new(&dataset, KsprConfig::default()));
//! let q = monitored
//!     .register(Algorithm::LpCta, vec![0.5, 0.5, 0.7], 2)
//!     .unwrap();
//! let before = monitored.result(q).unwrap().num_regions();
//!
//! // A deeply dominated insert is classified away with two dominance tests.
//! let (id, deltas) = monitored.insert(vec![0.2, 0.2, 0.2]);
//! assert!(deltas.is_empty(), "nothing changed, nobody is notified");
//! assert_eq!(monitored.result(q).unwrap().num_regions(), before);
//!
//! let (_, deltas) = monitored.delete(id);
//! assert!(deltas.is_empty());
//! assert!(monitored.unregister(q));
//! ```

use kspr::engine::policy_for;
use kspr::{check_record, Algorithm, IngestError, KsprResult, QueryEngine, QueryStats};
use kspr_spatial::{dominates, AggregateRTree, Record, RecordId};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Bound;

/// Identifier of a registered standing query (dense, never reused).
pub type QueryId = u64;

/// The engine surface the monitor drives.  Implemented for
/// [`kspr::QueryEngine`] here and for the sharded serving engine in
/// `kspr-serve`.
pub trait MonitorEngine {
    /// The dataset arity.
    fn dim(&self) -> usize;

    /// Runs one query against the current dataset state.
    fn run_query(&self, algorithm: Algorithm, focal: &[f64], k: usize) -> KsprResult;

    /// Number of live records dominating `values`, early-exiting once
    /// `limit` is reached (a return `>= limit` means "at least `limit`").
    fn count_dominating(&self, values: &[f64], limit: usize) -> usize;
}

impl MonitorEngine for QueryEngine {
    fn dim(&self) -> usize {
        self.dataset().dim()
    }

    fn run_query(&self, algorithm: Algorithm, focal: &[f64], k: usize) -> KsprResult {
        self.run(algorithm, focal, k)
    }

    fn count_dominating(&self, values: &[f64], limit: usize) -> usize {
        QueryEngine::count_dominating(self, values, limit)
    }
}

/// Why a standing query could not be registered.
#[derive(Debug, Clone, PartialEq)]
pub enum RegisterError {
    /// `k` must be at least 1.
    InvalidK,
    /// The focal record violates the ingest rules (arity / finiteness).
    Focal(IngestError),
    /// Only the CellTree policies (CTA, P-CTA, LP-CTA, k-skyband) expose the
    /// classification hooks; the sweep baselines (RTOPK, iMaxRank) do not.
    UnsupportedAlgorithm,
    /// [`Monitor::register_at`] was handed an id that is already registered
    /// (a corrupt or replayed-twice recovery stream).
    DuplicateId,
}

impl std::fmt::Display for RegisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegisterError::InvalidK => write!(f, "k must be at least 1"),
            RegisterError::Focal(err) => write!(f, "focal record {err}"),
            RegisterError::UnsupportedAlgorithm => {
                write!(
                    f,
                    "the algorithm does not support standing-query maintenance"
                )
            }
            RegisterError::DuplicateId => {
                write!(f, "the standing-query id is already registered")
            }
        }
    }
}

impl std::error::Error for RegisterError {}

/// How the monitor maintained a standing query for one update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateClass {
    /// The old result provably equals a fresh run; nothing was touched.
    Unaffected,
    /// The new result was derived in place (result emptied, or a
    /// whole-space rank shifted) without running the engine.
    Patched,
    /// The query was re-run through the engine.
    Rerun,
}

/// Classification counters across all updates and standing queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Standing queries ever registered.
    pub registered: u64,
    /// (update, query) pairs classified as unaffected (including every
    /// index-pruned pair).
    pub unaffected: u64,
    /// (update, query) pairs patched in place.
    pub patched: u64,
    /// (update, query) pairs classified as needing a re-run.
    pub reruns: u64,
    /// (update, query) pairs the classifier actually walked; the complement
    /// of `index_pruned` within `classified()`.
    pub visited: u64,
    /// (update, query) pairs the registry index proved unaffected in bulk,
    /// without visiting the query (also counted in `unaffected`).
    pub index_pruned: u64,
    /// Update batches processed through [`Monitor::apply_batch`].
    pub batches: u64,
    /// Updates processed through [`Monitor::apply_batch`].
    pub batched_updates: u64,
    /// Engine re-runs actually executed.  Within a batch every `reruns` pair
    /// of one query coalesces into a single post-batch run, so
    /// `engine_runs <= reruns`.
    pub engine_runs: u64,
}

impl MonitorStats {
    /// Total (update, query) classification events.
    pub fn classified(&self) -> u64 {
        self.unaffected + self.patched + self.reruns
    }
}

/// A change notification for one standing query after one update.
///
/// Unaffected and patched-without-change maintenance is silent.  A delta is
/// produced whenever the rank signature moved — and for **every** re-run,
/// even one whose region count and rank signature happen to match: a re-run
/// can change region *geometry* without moving either summary, and silence
/// would leave subscribers holding stale regions with no way to notice.
/// Compare `ranks_before`/`ranks_after` (or `regions_added` etc.) to tell a
/// summarized change from a possibly-geometry-only refresh.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultDelta {
    /// The standing query that changed.
    pub query: QueryId,
    /// How the new result was obtained.
    pub class: UpdateClass,
    /// Region count before the update.
    pub regions_before: usize,
    /// Region count after the update.
    pub regions_after: usize,
    /// Sorted region ranks before the update.
    pub ranks_before: Vec<usize>,
    /// Sorted region ranks after the update.
    pub ranks_after: Vec<usize>,
}

impl ResultDelta {
    /// Regions gained by the update (0 when regions were lost).
    pub fn regions_added(&self) -> usize {
        self.regions_after.saturating_sub(self.regions_before)
    }

    /// Regions lost to the update (0 when regions were gained).
    pub fn regions_removed(&self) -> usize {
        self.regions_before.saturating_sub(self.regions_after)
    }

    /// True iff some surviving region's rank shifted (score-order change)
    /// beyond pure adds/removes.
    pub fn ranks_shifted(&self) -> bool {
        self.regions_before == self.regions_after && self.ranks_before != self.ranks_after
    }
}

/// One registered long-lived query: the request, its latest result, and the
/// maintenance state the per-update classifier needs.
#[derive(Debug, Clone)]
pub struct StandingQuery {
    algorithm: Algorithm,
    focal: Vec<f64>,
    k: usize,
    /// Exact number of live records dominating the focal record, maintained
    /// by ±1 bookkeeping on every classified update.
    focal_dominators: usize,
    result: KsprResult,
}

impl StandingQuery {
    /// The algorithm the query runs under.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The focal record.
    pub fn focal(&self) -> &[f64] {
        &self.focal
    }

    /// The rank threshold.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The maintained result (always equal to a fresh run at the current
    /// dataset state, up to per-query statistics).
    pub fn result(&self) -> &KsprResult {
        &self.result
    }

    /// The maintained live dominator count of the focal record.
    pub fn focal_dominators(&self) -> usize {
        self.focal_dominators
    }

    /// Replaces the result with an empty one (the focal record left the
    /// top-`k` everywhere).
    fn set_empty(&mut self) {
        self.result = KsprResult::empty(self.result.space, QueryStats::new());
    }
}

/// Which side of an update is being classified (the payload of a
/// [`Monitor::apply_batch`] stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    /// The record was just inserted into the engine.
    Insert,
    /// The record was just deleted from the engine.
    Delete,
}

/// Spatial index over the registered focal points: an [`AggregateRTree`] for
/// the dominated-focal probe plus a `k`-grouped id map for the witness cut.
/// Registry slots are append-only tree ids; unregistering tombstones the
/// slot (`AggregateRTree::delete`), mirroring the engine's own tombstone
/// discipline.
#[derive(Debug, Default)]
struct RegistryIndex {
    /// Focal points keyed by registry slot.  Lazy (`None` until the first
    /// registration) because the tree cannot be bulk-loaded empty.
    tree: Option<AggregateRTree>,
    /// Registry slot → standing query id.
    owner: HashMap<RecordId, QueryId>,
    /// Standing query id → registry slot, for unregistration.
    slot: HashMap<QueryId, RecordId>,
    /// Query ids grouped by `k`: `range((Excluded(d), Unbounded))` yields
    /// exactly the queries whose witness requirement exceeds an update's
    /// live dominator count `d`.
    by_k: BTreeMap<usize, BTreeSet<QueryId>>,
}

impl RegistryIndex {
    fn add(&mut self, id: QueryId, focal: &[f64], k: usize) {
        let slot = match &mut self.tree {
            Some(tree) => tree.insert(focal.to_vec()),
            None => {
                self.tree = Some(AggregateRTree::bulk_load(
                    vec![Record::new(0, focal.to_vec())],
                    AggregateRTree::DEFAULT_FANOUT,
                ));
                0
            }
        };
        self.owner.insert(slot, id);
        self.slot.insert(id, slot);
        self.by_k.entry(k).or_default().insert(id);
    }

    fn remove(&mut self, id: QueryId, k: usize) {
        if let Some(slot) = self.slot.remove(&id) {
            self.owner.remove(&slot);
            if let Some(tree) = &mut self.tree {
                tree.delete(slot);
            }
        }
        if let Some(group) = self.by_k.get_mut(&k) {
            group.remove(&id);
            if group.is_empty() {
                self.by_k.remove(&k);
            }
        }
    }
}

/// The standing-query registry.  Generic over the engine only at the method
/// level, so one monitor type serves both the single [`QueryEngine`] and the
/// sharded serving engine.
#[derive(Debug)]
pub struct Monitor {
    /// Registered queries in id order (deterministic notification order).
    queries: BTreeMap<QueryId, StandingQuery>,
    next_id: QueryId,
    stats: MonitorStats,
    /// Wall-clock nanoseconds spent inside maintenance passes.  Kept out of
    /// [`MonitorStats`] so the counters stay deterministic (differential
    /// tests compare them between indexed and full-scan registries).
    maintenance_nanos: u64,
    /// Merged [`QueryStats`] of every engine re-run executed by maintenance
    /// passes — the same per-phase breakdown (prep / expansion / LP /
    /// dominance) served queries report, accumulated here because a re-run
    /// answers no client request of its own.  Kept next to
    /// [`Monitor::maintenance_nanos`] rather than in [`MonitorStats`]: the
    /// phase fields are wall-clock metadata.
    maintenance_engine_stats: QueryStats,
    /// `Some`: the spatial registry index (the default).  `None`: every
    /// update visits every query — kept for differential testing.
    index: Option<RegistryIndex>,
}

impl Default for Monitor {
    fn default() -> Self {
        Self::new()
    }
}

impl Monitor {
    /// An empty registry with the spatial index enabled.
    pub fn new() -> Self {
        Self {
            queries: BTreeMap::new(),
            next_id: 0,
            stats: MonitorStats::default(),
            maintenance_nanos: 0,
            maintenance_engine_stats: QueryStats::new(),
            index: Some(RegistryIndex::default()),
        }
    }

    /// An empty registry that classifies by scanning every query on every
    /// update.  Differential-testing reference for the indexed default —
    /// byte-for-byte the same results and notifications, linearly more work.
    pub fn full_scan() -> Self {
        Self {
            index: None,
            ..Self::new()
        }
    }

    /// True iff this registry uses the spatial index.
    pub fn is_indexed(&self) -> bool {
        self.index.is_some()
    }

    /// Number of registered standing queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True iff no standing query is registered.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Classification counters.
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// Total wall-clock nanoseconds spent in maintenance passes
    /// ([`Monitor::apply_insert`] / [`Monitor::apply_delete`] /
    /// [`Monitor::apply_batch`]).  Telemetry, not a classification counter:
    /// nondeterministic, so deliberately not part of [`MonitorStats`].
    pub fn maintenance_nanos(&self) -> u64 {
        self.maintenance_nanos
    }

    /// Merged engine statistics of every maintenance re-run, per-phase
    /// wall-clock breakdown included.  [`MonitorStats::engine_runs`] counts
    /// the runs; this is what they cost.
    pub fn maintenance_engine_stats(&self) -> &QueryStats {
        &self.maintenance_engine_stats
    }

    /// The standing query with the given id, if registered.
    pub fn query(&self, id: QueryId) -> Option<&StandingQuery> {
        self.queries.get(&id)
    }

    /// The maintained result of a standing query, if registered.
    pub fn result(&self, id: QueryId) -> Option<&KsprResult> {
        self.queries.get(&id).map(|q| q.result())
    }

    /// All registered queries, in id order.
    pub fn queries(&self) -> impl Iterator<Item = (QueryId, &StandingQuery)> {
        self.queries.iter().map(|(&id, q)| (id, q))
    }

    /// The id the next [`Monitor::register`] call will assign.  Ids are
    /// dense and never reused, so persisting this counter alongside the
    /// registered queries is enough to serialize the registry: restoring the
    /// counter and replaying registrations through
    /// [`Monitor::register_at`] reproduces the id assignment exactly.
    pub fn next_id(&self) -> QueryId {
        self.next_id
    }

    /// Recovery hook: advances the id counter to at least `next_id`.
    /// Needed when the highest persisted registration was later
    /// unregistered — replaying the surviving registrations alone would
    /// leave the counter low and a future registration would reuse a dead
    /// id, breaking the never-reused invariant subscribers rely on.
    pub fn restore_next_id(&mut self, next_id: QueryId) {
        self.next_id = self.next_id.max(next_id);
    }

    /// Recovery hook: registers a standing query under an **explicit id**,
    /// re-running it against `engine` to rebuild its result and maintenance
    /// state.  Used by the durability layer to reconstruct a registry from
    /// persisted registrations — the engine must already hold the dataset
    /// state the registration was persisted against, so the re-run
    /// reproduces the maintained result bit-for-bit (query results are
    /// deterministic functions of the live record set).
    ///
    /// The id counter advances past `id`, so later live registrations keep
    /// allocating fresh ids.
    ///
    /// # Errors
    /// Rejects the same invalid requests as [`Monitor::register`], plus ids
    /// that are already registered.
    pub fn register_at<E: MonitorEngine>(
        &mut self,
        engine: &E,
        id: QueryId,
        algorithm: Algorithm,
        focal: Vec<f64>,
        k: usize,
    ) -> Result<(), RegisterError> {
        if self.queries.contains_key(&id) {
            return Err(RegisterError::DuplicateId);
        }
        if k == 0 {
            return Err(RegisterError::InvalidK);
        }
        check_record(&focal, Some(engine.dim())).map_err(RegisterError::Focal)?;
        if policy_for(algorithm).is_none() {
            return Err(RegisterError::UnsupportedAlgorithm);
        }
        let result = engine.run_query(algorithm, &focal, k);
        let focal_dominators = engine.count_dominating(&focal, usize::MAX);
        self.next_id = self.next_id.max(id + 1);
        if let Some(index) = &mut self.index {
            index.add(id, &focal, k);
        }
        self.queries.insert(
            id,
            StandingQuery {
                algorithm,
                focal,
                k,
                focal_dominators,
                result,
            },
        );
        self.stats.registered += 1;
        Ok(())
    }

    /// Registers a standing query: validates the request, runs it once, and
    /// snapshots the maintenance state (exact focal dominator count).
    ///
    /// The engine must not change between this call and the next
    /// `apply_insert` / `apply_delete` without the monitor seeing the update.
    pub fn register<E: MonitorEngine>(
        &mut self,
        engine: &E,
        algorithm: Algorithm,
        focal: Vec<f64>,
        k: usize,
    ) -> Result<QueryId, RegisterError> {
        if k == 0 {
            return Err(RegisterError::InvalidK);
        }
        check_record(&focal, Some(engine.dim())).map_err(RegisterError::Focal)?;
        if policy_for(algorithm).is_none() {
            return Err(RegisterError::UnsupportedAlgorithm);
        }
        let result = engine.run_query(algorithm, &focal, k);
        let focal_dominators = engine.count_dominating(&focal, usize::MAX);
        let id = self.next_id;
        self.next_id += 1;
        if let Some(index) = &mut self.index {
            index.add(id, &focal, k);
        }
        self.queries.insert(
            id,
            StandingQuery {
                algorithm,
                focal,
                k,
                focal_dominators,
                result,
            },
        );
        self.stats.registered += 1;
        Ok(id)
    }

    /// Drops a standing query and its maintenance state; returns `false` if
    /// the id was never registered (or already unregistered).
    pub fn unregister(&mut self, id: QueryId) -> bool {
        match self.queries.remove(&id) {
            Some(q) => {
                if let Some(index) = &mut self.index {
                    index.remove(id, q.k);
                }
                true
            }
            None => false,
        }
    }

    /// Drops every standing query and its maintenance state (the counters
    /// survive).  Serving layers use this to invalidate the registry after a
    /// failure that may have left a maintenance pass half-applied — stale
    /// bookkeeping must never classify future updates.
    pub fn clear(&mut self) {
        self.queries.clear();
        if let Some(index) = &mut self.index {
            *index = RegistryIndex::default();
        }
    }

    /// Maintains every standing query for a record just **inserted** into the
    /// engine.  Call *after* the engine applied the insert, with the inserted
    /// values.  Returns one [`ResultDelta`] per query whose result changed.
    pub fn apply_insert<E: MonitorEngine>(
        &mut self,
        engine: &E,
        values: &[f64],
    ) -> Vec<ResultDelta> {
        self.apply_updates(engine, &[(UpdateKind::Insert, values.to_vec())])
    }

    /// Maintains every standing query for a record just **deleted** from the
    /// engine.  Call *after* the engine applied the delete, with the removed
    /// record's values (see [`kspr::QueryEngine::delete_returning`]).
    pub fn apply_delete<E: MonitorEngine>(
        &mut self,
        engine: &E,
        values: &[f64],
    ) -> Vec<ResultDelta> {
        self.apply_updates(engine, &[(UpdateKind::Delete, values.to_vec())])
    }

    /// Maintains every standing query for a **batch** of updates already
    /// applied to the engine, given in stream order.
    ///
    /// Probes run against the post-batch engine state (sound — see the
    /// module docs), every per-update probe is shared across all queries,
    /// each affected query is walked once over the whole batch, and however
    /// many of its (update, query) pairs demanded a re-run, at most **one**
    /// engine run happens per query — against the final state, which is
    /// exactly the state the result must match.  Each query produces at most
    /// one coalesced [`ResultDelta`] (pre-batch snapshot → post-batch
    /// result).
    pub fn apply_batch<E: MonitorEngine>(
        &mut self,
        engine: &E,
        updates: &[(UpdateKind, Vec<f64>)],
    ) -> Vec<ResultDelta> {
        if updates.is_empty() {
            return Vec::new();
        }
        self.stats.batches += 1;
        self.stats.batched_updates += updates.len() as u64;
        self.apply_updates(engine, updates)
    }

    fn apply_updates<E: MonitorEngine>(
        &mut self,
        engine: &E,
        updates: &[(UpdateKind, Vec<f64>)],
    ) -> Vec<ResultDelta> {
        if updates.is_empty() || self.queries.is_empty() {
            return Vec::new();
        }
        let clock = std::time::Instant::now();
        let deltas = self.apply_updates_timed(engine, updates);
        self.maintenance_nanos = self
            .maintenance_nanos
            .saturating_add(u64::try_from(clock.elapsed().as_nanos()).unwrap_or(u64::MAX));
        deltas
    }

    fn apply_updates_timed<E: MonitorEngine>(
        &mut self,
        engine: &E,
        updates: &[(UpdateKind, Vec<f64>)],
    ) -> Vec<ResultDelta> {
        // The dominator-count probe depends only on the delta record and the
        // largest registered k, so it is computed at most once per update
        // and shared across every query in the batch.
        let total = self.queries.len() as u64;
        let limit = self.queries.values().map(|q| q.k).max().unwrap_or(0);
        let mut delta_dominators: Vec<Option<usize>> = vec![None; updates.len()];

        // The visit set: query ids the classifier must walk, unioned over
        // the batch — (a) queries whose focal record an update dominates
        // (their dominator bookkeeping shifts) and (b) queries whose k
        // exceeds an update's live dominator count (the witness cut fails,
        // so a re-run may be due).  Every other query is provably unaffected
        // by every update in the batch (module docs) and accounted in bulk.
        let visit: Option<BTreeSet<QueryId>> = self.index.as_ref().map(|index| {
            let mut visit = BTreeSet::new();
            for (i, (_, values)) in updates.iter().enumerate() {
                let d = *delta_dominators[i]
                    .get_or_insert_with(|| engine.count_dominating(values, limit));
                for (_, group) in index.by_k.range((Bound::Excluded(d), Bound::Unbounded)) {
                    visit.extend(group.iter().copied());
                }
                if let Some(tree) = &index.tree {
                    tree.for_each_dominated(values, |slot| {
                        visit.insert(index.owner[&slot]);
                    });
                }
            }
            visit
        });
        let pruned = visit.as_ref().map_or(0, |v| total - v.len() as u64);
        self.stats.visited += (total - pruned) * updates.len() as u64;
        self.stats.index_pruned += pruned * updates.len() as u64;
        self.stats.unaffected += pruned * updates.len() as u64;

        let mut deltas = Vec::new();
        let stats = &mut self.stats;
        let engine_stats = &mut self.maintenance_engine_stats;
        for (&id, q) in self.queries.iter_mut() {
            if let Some(visit) = &visit {
                if !visit.contains(&id) {
                    continue;
                }
            }
            if let Some(delta) = Self::maintain_batch(
                id,
                q,
                engine,
                updates,
                &mut delta_dominators,
                limit,
                stats,
                engine_stats,
            ) {
                deltas.push(delta);
            }
        }
        deltas
    }

    /// Pre-mutation snapshot of a standing result: region count and rank
    /// signature, taken just before the first patch or rerun touches it.
    fn snapshot(q: &StandingQuery) -> (usize, Vec<usize>) {
        (q.result.num_regions(), q.result.rank_signature())
    }

    /// Walks one standing query over the whole batch, maintaining its state
    /// update by update.  The per-pair case analysis is the module-docs
    /// argument, in order; the first pair that demands a re-run marks the
    /// query stale and every later visible pair short-circuits into the same
    /// single post-batch engine run.
    #[allow(clippy::too_many_arguments)]
    fn maintain_batch<E: MonitorEngine>(
        id: QueryId,
        q: &mut StandingQuery,
        engine: &E,
        updates: &[(UpdateKind, Vec<f64>)],
        delta_dominators: &mut [Option<usize>],
        limit: usize,
        stats: &mut MonitorStats,
        engine_stats: &mut QueryStats,
    ) -> Option<ResultDelta> {
        // Pre-batch snapshot, taken lazily before the first mutation so the
        // all-unaffected walk stays allocation-free.
        let mut before: Option<(usize, Vec<usize>)> = None;
        let mut pending_rerun = false;
        for (i, (kind, values)) in updates.iter().enumerate() {
            let dominates_focal = dominates(values, &q.focal);
            // Ties and records the focal record dominates are removed by the
            // Section-3.1 preprocessing; updating one reproduces the old run.
            let invisible = values.as_slice() == q.focal.as_slice() || dominates(&q.focal, values);
            // Dominator bookkeeping happens even for pairs that are about to
            // short-circuit: the count must stay exact across the batch.
            if dominates_focal {
                match kind {
                    UpdateKind::Insert => q.focal_dominators += 1,
                    UpdateKind::Delete => {
                        debug_assert!(q.focal_dominators > 0, "dominator count underflow");
                        q.focal_dominators = q.focal_dominators.saturating_sub(1);
                    }
                }
            }
            if invisible {
                stats.unaffected += 1;
                continue;
            }
            if pending_rerun {
                // The result is already stale; every later visible pair joins
                // the one re-run below.
                stats.reruns += 1;
                continue;
            }
            if *kind == UpdateKind::Insert && q.result.is_empty() {
                // Inserts only push the focal record's rank up: empty stays
                // empty.
                stats.unaffected += 1;
                continue;
            }
            if dominates_focal {
                match Self::patch_dominator(q, *kind, &mut before) {
                    UpdateClass::Unaffected => stats.unaffected += 1,
                    UpdateClass::Patched => stats.patched += 1,
                    UpdateClass::Rerun => {
                        stats.reruns += 1;
                        pending_rerun = true;
                    }
                }
                continue;
            }
            // Incomparable delta record: the skyband witness test.  With at
            // least k live dominators the record cannot change the result
            // area, and the engine's witness-skyband restriction makes the
            // region decomposition — bound reports included — identical too
            // (the cell-wise LP-CTA patch: zero cells to re-derive).
            let d =
                *delta_dominators[i].get_or_insert_with(|| engine.count_dominating(values, limit));
            if d >= q.k {
                stats.unaffected += 1;
                continue;
            }
            stats.reruns += 1;
            pending_rerun = true;
        }
        if pending_rerun {
            if before.is_none() {
                before = Some(Self::snapshot(q));
            }
            q.result = engine.run_query(q.algorithm, &q.focal, q.k);
            stats.engine_runs += 1;
            engine_stats.merge(&q.result.stats);
        }
        // Reruns always notify — an identical rank signature does not prove
        // identical region geometry (see the ResultDelta docs).
        let (regions_before, ranks_before) = before?;
        let ranks_after = q.result.rank_signature();
        if !pending_rerun && ranks_before == ranks_after {
            return None;
        }
        Some(ResultDelta {
            query: id,
            class: if pending_rerun {
                UpdateClass::Rerun
            } else {
                UpdateClass::Patched
            },
            regions_before,
            regions_after: q.result.num_regions(),
            ranks_before,
            ranks_after,
        })
    }

    /// The delta record dominates the focal record: the rank offset shifts
    /// uniformly, so emptiness and whole-space results patch in place;
    /// anything richer changed its effective k and must re-run.
    fn patch_dominator(
        q: &mut StandingQuery,
        kind: UpdateKind,
        before: &mut Option<(usize, Vec<usize>)>,
    ) -> UpdateClass {
        match kind {
            UpdateKind::Insert => {
                if q.focal_dominators >= q.k {
                    // At least k records now outscore the focal record
                    // everywhere; a fresh run short-circuits to Empty.
                    before.get_or_insert_with(|| Self::snapshot(q));
                    q.set_empty();
                    return UpdateClass::Patched;
                }
                if q.result.is_whole_space() {
                    before.get_or_insert_with(|| Self::snapshot(q));
                    let rank = q.result.regions[0].rank + 1;
                    if rank > q.k {
                        q.set_empty();
                    } else {
                        q.result.regions[0].rank = rank;
                    }
                    return UpdateClass::Patched;
                }
                UpdateClass::Rerun
            }
            UpdateKind::Delete => {
                if q.focal_dominators >= q.k {
                    // Still at least k everywhere-dominators: the result was
                    // and remains empty.
                    debug_assert!(q.result.is_empty());
                    return UpdateClass::Unaffected;
                }
                if q.result.is_whole_space() {
                    // A whole-space rank always counts its dominators, so it
                    // is at least 2 when one of them is being removed.
                    debug_assert!(q.result.regions[0].rank >= 2);
                    before.get_or_insert_with(|| Self::snapshot(q));
                    q.result.regions[0].rank = q.result.regions[0].rank.saturating_sub(1).max(1);
                    return UpdateClass::Patched;
                }
                UpdateClass::Rerun
            }
        }
    }
}

/// True iff the update record `values` (an insert that just landed, or a
/// delete that was just applied — probe the engine **after** the update
/// either way) provably leaves the focal record's top-`k` membership
/// indicator unchanged at *every* preference vector — and with it the true
/// market impact.
///
/// This is the standing-query classifier's witness logic, split out for
/// consumers that maintain a scalar instead of a region decomposition (the
/// approximate standing queries of `kspr-serve`): an unchanged indicator
/// means a previously drawn Monte-Carlo estimate — and its confidence
/// interval — remains valid for the *current* dataset state, so the
/// estimate need not be redrawn.  Two sufficient conditions, each from the
/// module-docs argument:
///
/// * the focal record dominates (or ties) the update record — its score
///   never beats the focal score, so the Section-3.1 preprocessing never
///   sees it;
/// * the update record has at least `k` live dominators (one MBR-pruned
///   [`MonitorEngine::count_dominating`] probe) — wherever it outscores the
///   focal record, its `k` dominators already do, so the focal record's
///   in/out-of-top-`k` status is the same with and without it.  (For a
///   delete, the probe runs against the post-delete state, which is exactly
///   the record set the witnesses must survive in.)
///
/// A `false` return means "possibly changed", not "changed": the caller
/// re-runs or re-estimates.
pub fn update_preserves_impact<E: MonitorEngine + ?Sized>(
    engine: &E,
    focal: &[f64],
    k: usize,
    values: &[f64],
) -> bool {
    values == focal || dominates(focal, values) || engine.count_dominating(values, k) >= k
}

/// A [`QueryEngine`] bundled with a [`Monitor`]: updates go through one call
/// that applies them to the engine *and* maintains every standing query.
pub struct MonitoredEngine {
    engine: QueryEngine,
    monitor: Monitor,
}

impl MonitoredEngine {
    /// Wraps an engine with an empty standing-query registry.
    pub fn new(engine: QueryEngine) -> Self {
        Self {
            engine,
            monitor: Monitor::new(),
        }
    }

    /// The underlying engine (for ad-hoc queries).
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// The standing-query registry.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Registers a standing query (see [`Monitor::register`]).
    pub fn register(
        &mut self,
        algorithm: Algorithm,
        focal: Vec<f64>,
        k: usize,
    ) -> Result<QueryId, RegisterError> {
        self.monitor.register(&self.engine, algorithm, focal, k)
    }

    /// Drops a standing query (see [`Monitor::unregister`]).
    pub fn unregister(&mut self, id: QueryId) -> bool {
        self.monitor.unregister(id)
    }

    /// The maintained result of a standing query.
    pub fn result(&self, id: QueryId) -> Option<&KsprResult> {
        self.monitor.result(id)
    }

    /// Inserts a record into the engine and maintains every standing query;
    /// returns the new record id and the change notifications.
    pub fn insert(&mut self, values: Vec<f64>) -> (RecordId, Vec<ResultDelta>) {
        let id = self.engine.insert(values.clone());
        let deltas = self.monitor.apply_insert(&self.engine, &values);
        (id, deltas)
    }

    /// Deletes a record from the engine and maintains every standing query;
    /// returns whether a live record was removed and the change
    /// notifications.
    pub fn delete(&mut self, id: RecordId) -> (bool, Vec<ResultDelta>) {
        match self.engine.delete_returning(id) {
            Some(values) => {
                let deltas = self.monitor.apply_delete(&self.engine, &values);
                (true, deltas)
            }
            None => (false, Vec::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspr::{Dataset, KsprConfig};

    fn engine(raw: Vec<Vec<f64>>) -> QueryEngine {
        QueryEngine::new(&Dataset::new(raw), KsprConfig::default())
    }

    fn figure1() -> QueryEngine {
        engine(vec![
            vec![0.3, 0.8, 0.8],
            vec![0.9, 0.4, 0.4],
            vec![0.8, 0.3, 0.4],
            vec![0.4, 0.3, 0.6],
        ])
    }

    #[test]
    fn update_preserves_impact_matches_a_brute_force_indicator_check() {
        use kspr::naive;
        use kspr::PreferenceSpace;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(71);
        let d = 3;
        let raw: Vec<Vec<f64>> = (0..60)
            .map(|_| (0..d).map(|_| rng.gen_range(0.05..0.95)).collect())
            .collect();
        let k = 4;
        let focal = vec![0.7, 0.65, 0.7];
        let space = PreferenceSpace::transformed(d);
        let probes = naive::sample_weights(&space, 400, 5);

        // For a spread of candidate update records, whenever the classifier
        // says "preserved", inserting the record must leave the top-k
        // indicator unchanged on every probe weight.
        let mut preserved_some = false;
        let mut changed_some = false;
        for seed in 0..20 {
            let mut urng = SmallRng::seed_from_u64(1000 + seed);
            let values: Vec<f64> = (0..d).map(|_| urng.gen_range(0.0..1.0)).collect();
            let mut with = raw.clone();
            with.push(values.clone());
            let post = engine(with.clone());
            if update_preserves_impact(&post, &focal, k, &values) {
                preserved_some = true;
                for w in &probes {
                    let full = space.to_full_weight(w);
                    assert_eq!(
                        naive::is_top_k(&raw, &focal, &full, k),
                        naive::is_top_k(&with, &focal, &full, k),
                        "preserved-classified insert changed the indicator at {w:?}"
                    );
                }
            } else {
                changed_some = true;
            }
        }
        assert!(preserved_some, "some random update must classify away");
        assert!(changed_some, "some random update must not classify away");

        // The explicit cases: ties and focal-dominated records are invisible;
        // a dominator of the focal record with < k dominators is not.
        let post = engine(raw.clone());
        assert!(update_preserves_impact(&post, &focal, k, &focal));
        assert!(update_preserves_impact(&post, &focal, k, &[0.1, 0.1, 0.1]));
        assert!(!update_preserves_impact(
            &post,
            &focal,
            k,
            &[0.99, 0.99, 0.99]
        ));
    }

    /// The maintained result must match a fresh run at the current state.
    fn assert_fresh(monitored: &MonitoredEngine, id: QueryId, ctx: &str) {
        let q = monitored.monitor().query(id).expect("registered");
        let fresh = monitored.engine().run(q.algorithm(), q.focal(), q.k());
        assert_eq!(
            q.result().num_regions(),
            fresh.num_regions(),
            "{ctx}: region count"
        );
        assert_eq!(
            q.result().rank_signature(),
            fresh.rank_signature(),
            "{ctx}: ranks"
        );
    }

    #[test]
    fn register_validates_the_request() {
        let engine = figure1();
        let mut monitor = Monitor::new();
        assert_eq!(
            monitor.register(&engine, Algorithm::LpCta, vec![0.5, 0.5, 0.7], 0),
            Err(RegisterError::InvalidK)
        );
        assert_eq!(
            monitor.register(&engine, Algorithm::LpCta, vec![0.5, 0.5], 2),
            Err(RegisterError::Focal(IngestError::ArityMismatch {
                expected: 3,
                got: 2
            }))
        );
        // (NaN payloads are not `==`-comparable; match on the variant.)
        assert!(matches!(
            monitor.register(&engine, Algorithm::LpCta, vec![0.5, f64::NAN, 0.7], 2),
            Err(RegisterError::Focal(IngestError::NonFinite { .. }))
        ));
        for alg in [Algorithm::Rtopk, Algorithm::IMaxRank] {
            assert_eq!(
                monitor.register(&engine, alg, vec![0.5, 0.5, 0.7], 2),
                Err(RegisterError::UnsupportedAlgorithm)
            );
        }
        assert!(monitor.is_empty());
        assert_eq!(monitor.stats().registered, 0);

        let id = monitor
            .register(&engine, Algorithm::LpCta, vec![0.5, 0.5, 0.7], 2)
            .expect("valid request");
        assert_eq!(monitor.len(), 1);
        assert_eq!(monitor.query(id).unwrap().k(), 2);
        assert_eq!(monitor.query(id).unwrap().focal_dominators(), 0);
        assert!(monitor.result(id).is_some());
    }

    #[test]
    fn unregister_frees_the_maintenance_state() {
        let engine = figure1();
        let mut monitor = Monitor::new();
        let a = monitor
            .register(&engine, Algorithm::LpCta, vec![0.5, 0.5, 0.7], 2)
            .unwrap();
        let b = monitor
            .register(&engine, Algorithm::KSkyband, vec![0.6, 0.6, 0.5], 3)
            .unwrap();
        assert_ne!(a, b, "ids are unique");
        assert_eq!(monitor.len(), 2);
        assert!(monitor.unregister(a));
        assert!(!monitor.unregister(a), "double unregister fails");
        assert_eq!(monitor.len(), 1);
        assert!(monitor.unregister(b));
        assert!(monitor.is_empty());
        assert!(monitor.result(a).is_none());
        assert_eq!(monitor.stats().registered, 2, "counters survive");
    }

    #[test]
    fn invisible_updates_are_classified_without_probing() {
        let mut monitored = MonitoredEngine::new(figure1());
        let q = monitored
            .register(Algorithm::LpCta, vec![0.5, 0.5, 0.7], 2)
            .unwrap();
        // Dominated by the focal record, and an exact tie: both invisible.
        for values in [vec![0.1, 0.1, 0.1], vec![0.5, 0.5, 0.7]] {
            let (id, deltas) = monitored.insert(values);
            assert!(deltas.is_empty());
            assert_fresh(&monitored, q, "after invisible insert");
            let (removed, deltas) = monitored.delete(id);
            assert!(removed);
            assert!(deltas.is_empty());
            assert_fresh(&monitored, q, "after invisible delete");
        }
        let stats = monitored.monitor().stats();
        assert_eq!(stats.unaffected, 4);
        assert_eq!(stats.patched + stats.reruns, 0);
    }

    #[test]
    fn dominator_inserts_empty_the_result_in_place() {
        let mut monitored = MonitoredEngine::new(figure1());
        let q = monitored
            .register(Algorithm::LpCta, vec![0.5, 0.5, 0.7], 1)
            .unwrap();
        assert!(monitored.result(q).unwrap().num_regions() >= 1);
        // One dominator reaches k = 1: the result empties without a rerun.
        let (id, deltas) = monitored.insert(vec![0.6, 0.6, 0.8]);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].class, UpdateClass::Patched);
        assert_eq!(deltas[0].regions_after, 0);
        assert!(deltas[0].regions_removed() >= 1);
        assert!(monitored.result(q).unwrap().is_empty());
        assert_fresh(&monitored, q, "after dominator insert");
        // While empty, any further insert is unaffected.
        let (other, deltas) = monitored.insert(vec![0.7, 0.2, 0.9]);
        assert!(deltas.is_empty());
        assert_fresh(&monitored, q, "insert while empty");
        monitored.delete(other);
        assert_fresh(&monitored, q, "delete while empty");
        // Deleting the dominator re-runs (k_effective changed back) and
        // restores the original regions.
        let (_, deltas) = monitored.delete(id);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].class, UpdateClass::Rerun);
        assert!(deltas[0].regions_added() >= 1);
        assert_fresh(&monitored, q, "after dominator delete");
        assert_eq!(monitored.monitor().query(q).unwrap().focal_dominators(), 0);
    }

    #[test]
    fn whole_space_results_patch_their_rank() {
        // Every record is dominated by the focal record: whole space, rank 1.
        let mut monitored = MonitoredEngine::new(engine(vec![vec![0.2, 0.2], vec![0.3, 0.1]]));
        let q = monitored
            .register(Algorithm::Pcta, vec![0.8, 0.8], 3)
            .unwrap();
        assert!(monitored.result(q).unwrap().is_whole_space());
        assert_eq!(monitored.result(q).unwrap().rank_signature(), vec![1]);

        // Dominators shift the uniform rank in place, one per update.
        let (a, deltas) = monitored.insert(vec![0.9, 0.9]);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].class, UpdateClass::Patched);
        assert!(deltas[0].ranks_shifted());
        assert_eq!(monitored.result(q).unwrap().rank_signature(), vec![2]);
        assert_fresh(&monitored, q, "after first dominator");

        let (b, deltas) = monitored.insert(vec![0.95, 0.95]);
        assert_eq!(deltas[0].class, UpdateClass::Patched);
        assert_eq!(monitored.result(q).unwrap().rank_signature(), vec![3]);
        assert_fresh(&monitored, q, "after second dominator");

        // A third dominator pushes the rank past k: patched to empty.
        let (c, deltas) = monitored.insert(vec![0.99, 0.99]);
        assert_eq!(deltas[0].class, UpdateClass::Patched);
        assert!(monitored.result(q).unwrap().is_empty());
        assert_fresh(&monitored, q, "rank pushed past k");

        // Deleting them walks the rank back down, patched where whole-space.
        monitored.delete(c);
        assert_fresh(&monitored, q, "after deleting third dominator");
        let (_, deltas) = monitored.delete(b);
        assert_eq!(
            deltas[0].class,
            UpdateClass::Patched,
            "whole-space rank-down"
        );
        assert_eq!(monitored.result(q).unwrap().rank_signature(), vec![2]);
        assert_fresh(&monitored, q, "after deleting second dominator");
        monitored.delete(a);
        assert_eq!(monitored.result(q).unwrap().rank_signature(), vec![1]);
        assert_fresh(&monitored, q, "after deleting first dominator");
    }

    #[test]
    fn witnessed_updates_are_unaffected_for_schedule_invariant_policies() {
        // A focal record with a non-trivial result under P-CTA (no bound
        // reports, so the witness shortcut applies to bounded results too).
        let mut monitored = MonitoredEngine::new(figure1());
        let q = monitored
            .register(Algorithm::Pcta, vec![0.5, 0.5, 0.7], 3)
            .unwrap();
        assert!(monitored.result(q).unwrap().num_regions() >= 1);
        let before = monitored.monitor().stats();
        // (0.35, 0.25, 0.35) is dominated by records 0, 3 and the focal
        // record... the focal-dominated case is invisible; use a record that
        // is incomparable with the focal but deeply dominated by the dataset:
        // (0.25, 0.75, 0.5) is incomparable with (0.5, 0.5, 0.7) and
        // dominated by (0.3, 0.8, 0.8) only — so pick k = 1.
        let mut cheap = MonitoredEngine::new(figure1());
        let q1 = cheap
            .register(Algorithm::Pcta, vec![0.5, 0.5, 0.7], 1)
            .unwrap();
        let (id, deltas) = cheap.insert(vec![0.25, 0.75, 0.5]);
        assert!(deltas.is_empty());
        assert_eq!(cheap.monitor().stats().unaffected, 1);
        assert_eq!(cheap.monitor().stats().reruns, 0);
        assert_fresh(&cheap, q1, "witnessed insert");
        let (_, deltas) = cheap.delete(id);
        assert!(deltas.is_empty());
        assert_eq!(cheap.monitor().stats().unaffected, 2);
        assert_fresh(&cheap, q1, "witnessed delete");

        // The k = 3 P-CTA query has no 3-dominator witness for this record:
        // it must re-run (and agree with a fresh run).
        assert_eq!(
            monitored.monitor().maintenance_engine_stats().batches,
            0,
            "no engine run has been charged to maintenance yet"
        );
        let (_, _) = monitored.insert(vec![0.25, 0.75, 0.5]);
        let after = monitored.monitor().stats();
        assert_eq!(after.reruns, before.reruns + 1);
        assert_fresh(&monitored, q, "unwitnessed insert reran");
        // The re-run's engine cost lands in the maintenance accumulator.
        let cost = monitored.monitor().maintenance_engine_stats();
        assert!(cost.batches >= 1, "the rerun's stats were merged");
        assert!(cost.processed_records > 0);
    }

    #[test]
    fn bound_using_policies_retain_results_under_witnessed_updates() {
        // LP-CTA's look-ahead bounds read a witness-skyband-restricted
        // aggregate tree (kspr-core), so a witnessed incomparable record
        // leaves even the bound reports bit-identical: the region-rich
        // result is retained with zero cells re-derived and no re-run.
        let mut monitored = MonitoredEngine::new(figure1());
        let q = monitored
            .register(Algorithm::LpCta, vec![0.5, 0.5, 0.7], 1)
            .unwrap();
        assert!(!monitored.result(q).unwrap().is_empty());
        assert!(!monitored.result(q).unwrap().is_whole_space());
        let regions = monitored.result(q).unwrap().num_regions();
        // Incomparable, witnessed by its one dominator (k = 1): retained.
        let (id, deltas) = monitored.insert(vec![0.25, 0.75, 0.5]);
        assert!(deltas.is_empty(), "a retained result notifies nobody");
        assert_eq!(monitored.monitor().stats().reruns, 0);
        assert_eq!(monitored.monitor().stats().engine_runs, 0);
        assert_eq!(monitored.result(q).unwrap().num_regions(), regions);
        assert_fresh(&monitored, q, "lp-cta witnessed insert retained");
        let (removed, deltas) = monitored.delete(id);
        assert!(removed);
        assert!(deltas.is_empty());
        assert_eq!(monitored.monitor().stats().reruns, 0);
        assert_fresh(&monitored, q, "lp-cta witnessed delete retained");
    }

    #[test]
    fn indexed_registry_matches_full_scan_and_prunes_visits() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        let d = 3;
        let raw: Vec<Vec<f64>> = (0..50)
            .map(|_| (0..d).map(|_| rng.gen_range(0.05..0.95)).collect())
            .collect();
        let mut eng = engine(raw);
        let mut indexed = Monitor::new();
        let mut full = Monitor::full_scan();
        assert!(indexed.is_indexed());
        assert!(!full.is_indexed());
        let algs = [
            Algorithm::Cta,
            Algorithm::Pcta,
            Algorithm::LpCta,
            Algorithm::KSkyband,
        ];
        for i in 0..24usize {
            let focal: Vec<f64> = (0..d).map(|_| rng.gen_range(0.3..0.9)).collect();
            let k = 1 + (i % 4);
            let a = indexed
                .register(&eng, algs[i % 4], focal.clone(), k)
                .unwrap();
            let b = full.register(&eng, algs[i % 4], focal, k).unwrap();
            assert_eq!(a, b, "registries must assign the same ids");
        }
        // Unregister a couple to exercise registry-slot tombstoning.
        assert!(indexed.unregister(3) && full.unregister(3));
        assert!(indexed.unregister(17) && full.unregister(17));

        let mut live: Vec<RecordId> = (0..50).collect();
        for step in 0..30 {
            let (deltas_i, deltas_f) = if step % 3 == 2 && live.len() > 5 {
                let victim = live.swap_remove(rng.gen_range(0..live.len()));
                let values = eng.delete_returning(victim).expect("victim is live");
                (
                    indexed.apply_delete(&eng, &values),
                    full.apply_delete(&eng, &values),
                )
            } else {
                let values: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..1.0)).collect();
                live.push(eng.insert(values.clone()));
                (
                    indexed.apply_insert(&eng, &values),
                    full.apply_insert(&eng, &values),
                )
            };
            assert_eq!(deltas_i, deltas_f, "step {step}: notifications diverge");
            for (id, qi) in indexed.queries() {
                let qf = full.query(id).expect("registries hold the same ids");
                assert_eq!(
                    qi.result().num_regions(),
                    qf.result().num_regions(),
                    "step {step} query {id}: region count"
                );
                assert_eq!(
                    qi.result().rank_signature(),
                    qf.result().rank_signature(),
                    "step {step} query {id}: ranks"
                );
                assert_eq!(
                    qi.focal_dominators(),
                    qf.focal_dominators(),
                    "step {step} query {id}: dominator bookkeeping"
                );
            }
        }
        let si = indexed.stats();
        let sf = full.stats();
        assert_eq!(si.classified(), sf.classified(), "every pair accounted");
        assert_eq!(
            (si.unaffected, si.patched, si.reruns),
            (sf.unaffected, sf.patched, sf.reruns),
            "identical classification outcomes"
        );
        assert_eq!(sf.index_pruned, 0);
        assert_eq!(sf.visited, sf.classified(), "full scan visits everything");
        assert!(si.index_pruned > 0, "the index must prune visits: {si:?}");
        assert_eq!(si.visited + si.index_pruned, si.classified());
        assert!(si.visited < sf.visited);
    }

    #[test]
    fn apply_batch_coalesces_deltas_and_engine_runs() {
        let mut eng = figure1();
        let mut monitor = Monitor::new();
        let q = monitor
            .register(&eng, Algorithm::Pcta, vec![0.5, 0.5, 0.7], 2)
            .unwrap();
        // Two incomparable inserts, neither with 2 live dominators: each
        // would force a re-run on its own, but the batch coalesces them into
        // one post-batch engine run and one notification.
        let updates = vec![
            (UpdateKind::Insert, vec![0.25, 0.75, 0.5]),
            (UpdateKind::Insert, vec![0.9, 0.1, 0.9]),
        ];
        for (_, values) in &updates {
            eng.insert(values.clone());
        }
        let deltas = monitor.apply_batch(&eng, &updates);
        assert_eq!(deltas.len(), 1, "one coalesced delta per query");
        assert_eq!(deltas[0].query, q);
        assert_eq!(deltas[0].class, UpdateClass::Rerun);
        let stats = monitor.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batched_updates, 2);
        assert_eq!(stats.classified(), 2, "two pairs for the one query");
        assert_eq!(stats.reruns, 2, "both pairs demanded a re-run");
        assert_eq!(stats.engine_runs, 1, "...but the engine ran only once");
        let fresh = eng.run(Algorithm::Pcta, &[0.5, 0.5, 0.7], 2);
        let kept = monitor.result(q).unwrap();
        assert_eq!(kept.num_regions(), fresh.num_regions());
        assert_eq!(kept.rank_signature(), fresh.rank_signature());

        // The same stream applied one update at a time reaches the same
        // result, paying one engine run per update.
        let mut single = Monitor::new();
        let s = single
            .register(&eng, Algorithm::Pcta, vec![0.5, 0.5, 0.7], 2)
            .unwrap();
        // (Registered against the post-batch engine; replaying the same
        // updates is witnessed-or-rerun either way and must converge.)
        for (_, values) in &updates {
            single.apply_insert(&eng, values);
        }
        assert_eq!(
            single.result(s).unwrap().rank_signature(),
            kept.rank_signature()
        );
    }

    #[test]
    fn monitored_engine_matches_fresh_runs_under_random_updates() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(2024);
        let d = 3;
        let raw: Vec<Vec<f64>> = (0..60)
            .map(|_| (0..d).map(|_| rng.gen_range(0.05..0.95)).collect())
            .collect();
        let mut monitored = MonitoredEngine::new(engine(raw));
        let mut ids = Vec::new();
        for (alg, k) in [
            (Algorithm::Cta, 2),
            (Algorithm::Pcta, 3),
            (Algorithm::LpCta, 2),
            (Algorithm::KSkyband, 3),
        ] {
            let focal: Vec<f64> = (0..d).map(|_| rng.gen_range(0.3..0.9)).collect();
            ids.push(monitored.register(alg, focal, k).unwrap());
        }
        let mut live: Vec<RecordId> = (0..60).collect();
        for step in 0..40 {
            if step % 3 == 0 && live.len() > 5 {
                let victim = live.swap_remove(rng.gen_range(0..live.len()));
                let (removed, _) = monitored.delete(victim);
                assert!(removed);
            } else {
                let values: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..1.0)).collect();
                let (id, _) = monitored.insert(values);
                live.push(id);
            }
            for &q in &ids {
                assert_fresh(&monitored, q, &format!("step {step}"));
            }
        }
        let stats = monitored.monitor().stats();
        assert_eq!(stats.classified(), 40 * 4);
        assert!(
            stats.unaffected > 0,
            "some updates must classify away cheaply: {stats:?}"
        );
    }
}
