//! # kspr-approx — the guaranteed-error approximate query tier
//!
//! The paper's conclusion names "approximate kSPR algorithms, with accuracy
//! guarantees, for the purpose of faster processing" as its future-work
//! direction.  This crate is that tier: instead of the exact region
//! decomposition, a query is answered with a **market-impact estimate**
//! whose two-sided confidence interval meets a caller-specified
//! [`ErrorBudget`] (`epsilon`, `confidence`) — the sample count is derived
//! from the Hoeffding bound, so the guarantee is distribution-free.
//!
//! ## Why sampling wins where the exact engine loses
//!
//! The exact algorithms build (part of) an arrangement of up to
//! `candidates^work_dim` cells; the estimator's cost is
//! `O(samples · candidates)` and **independent of the arrangement
//! complexity**.  Large `k`, high dimensionality and anti-correlated data —
//! exactly the settings that blow the arrangement up — leave the sampling
//! cost untouched.
//!
//! ## The three pillars
//!
//! * [`ApproxEngine`] — a sampler over an **epoch-consistent dataset
//!   snapshot**.  Construction captures the dataset handle (copy-on-write
//!   protected: concurrent inserts/deletes cannot skew an in-flight
//!   estimate) and, when built [`ApproxEngine::from_engine`], restricts the
//!   per-sample probes to the engine's cached dataset-level k-skyband — a
//!   **result-preserving** pruning: a record outside the band has at least
//!   `k` band dominators, and wherever it outscores the focal record they
//!   all do, so the top-`k` membership indicator is pointwise identical on
//!   the band and on the full dataset (the same witness argument behind the
//!   `kspr-serve` shard merge).
//! * **Batched estimation** — [`ApproxEngine::estimate_batch`] shares the
//!   per-sample work across a whole batch of focal records: one sweep
//!   computes every candidate's score and the `k`-th largest score per
//!   sample (`O(samples · candidates)`), after which each focal record's
//!   top-`k` probe is a single dot product and comparison
//!   (`O(samples · batch · d)`), instead of `O(batch · samples ·
//!   candidates)` for independent estimates.  Batched results are
//!   bit-identical to single-query estimates under the same seed.
//! * **Tiered dispatch** — [`run_tiered`] / [`run_tiered_batch`] route a
//!   query per [`QueryTier`]: `Exact` is a pure passthrough to
//!   [`kspr::QueryEngine`], `Approximate` always samples, and `Auto`
//!   estimates the arrangement cost from dataset statistics
//!   ([`estimated_cost`]: `band^work_dim`) and keeps cheap small-`k` /
//!   low-`d` queries exact while sending arrangement-bound ones to the
//!   sampler.
//!
//! ```
//! use kspr::{Algorithm, Dataset, ErrorBudget, KsprConfig, QueryEngine, QueryTier};
//! use kspr_approx::{run_tiered, ApproxEngine, TieredResult};
//!
//! let dataset = Dataset::new(vec![
//!     vec![0.3, 0.8, 0.8],
//!     vec![0.9, 0.4, 0.4],
//!     vec![0.8, 0.3, 0.4],
//!     vec![0.4, 0.3, 0.6],
//! ]);
//! let budget = ErrorBudget::new(0.05, 0.95);
//! let config = KsprConfig::default().with_tier(QueryTier::approximate(budget));
//! let engine = QueryEngine::new(&dataset, config);
//!
//! // The configured tier answers with a budgeted estimate ...
//! match run_tiered(&engine, Algorithm::LpCta, &[0.5, 0.5, 0.7], 3, 42) {
//!     TieredResult::Approximate(est) => {
//!         assert!(est.half_width <= budget.epsilon);
//!         assert!(est.impact >= 0.0 && est.impact <= 1.0);
//!     }
//!     TieredResult::Exact(_) => unreachable!("the tier is Approximate"),
//! }
//!
//! // ... and the sampler is also usable directly, over a stable snapshot.
//! let sampler = ApproxEngine::from_engine(&engine, 3);
//! let estimate = sampler.estimate(&[0.5, 0.5, 0.7], &budget, 42);
//! assert!(estimate.covers(estimate.impact));
//! ```

use kspr::{Algorithm, ApproxImpact, ApproxOptions, ColumnarBlock, Dataset, ErrorBudget};
use kspr::{KsprResult, QueryEngine, RecordId};

// Re-exported so tier-dispatch consumers only need a `kspr-approx`
// dependency.
pub use kspr::QueryTier;
use kspr_geometry::{dot, PreferenceSpace};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;

pub use kspr::approximate::{hoeffding_half_width, samples_for_accuracy};

/// Score-comparison tolerance of the top-`k` probe.  Must match
/// `kspr::naive::rank_of` (a record outranks the focal record only when its
/// score exceeds the focal score by more than this), so sampling decisions
/// agree bit-for-bit with the brute-force oracle.
const TIE_EPS: f64 = 1e-12;

/// Answer of a tier-dispatched query: the exact region decomposition, or a
/// budgeted impact estimate.
#[derive(Debug, Clone)]
pub enum TieredResult {
    /// The exact engine ran: full paper semantics.
    Exact(KsprResult),
    /// The sampler ran: an impact estimate with a Hoeffding interval.
    Approximate(ApproxImpact),
}

impl TieredResult {
    /// The exact result, if this query ran exactly.
    pub fn as_exact(&self) -> Option<&KsprResult> {
        match self {
            TieredResult::Exact(result) => Some(result),
            TieredResult::Approximate(_) => None,
        }
    }

    /// The estimate, if this query ran approximately.
    pub fn as_approximate(&self) -> Option<&ApproxImpact> {
        match self {
            TieredResult::Exact(_) => None,
            TieredResult::Approximate(estimate) => Some(estimate),
        }
    }

    /// True iff the exact engine answered.
    pub fn is_exact(&self) -> bool {
        matches!(self, TieredResult::Exact(_))
    }
}

/// Arrangement-size estimate for `candidates` record hyperplanes in a
/// `work_dim`-dimensional working space: `candidates^work_dim`, the
/// asymptotic cell count of a hyperplane arrangement.  This is what the
/// `Auto` tier compares against its `cost_threshold`.
pub fn arrangement_cost(candidates: usize, work_dim: usize) -> f64 {
    (candidates.max(1) as f64).powi(work_dim as i32)
}

/// The engine-level `Auto`-tier cost estimate: the arrangement-size bound of
/// the dataset-level k-skyband (served from the engine's shared-prep cache,
/// so repeated routing decisions are O(1)).  Only band members can
/// contribute hyperplanes to any query's arrangement (Lemma 6 / Appendix B),
/// which makes the band size the focal-independent proxy for how expensive
/// the exact engine can get at this `(dataset, k, d)`.
pub fn estimated_cost(engine: &QueryEngine, k: usize) -> f64 {
    let dataset = engine.dataset();
    if dataset.is_empty() {
        return 0.0;
    }
    let band = engine.shared_prep_for(k).skyband().len();
    let work_dim = PreferenceSpace::new(dataset.dim(), engine.config().space).work_dim();
    arrangement_cost(band, work_dim)
}

/// Accumulated per-focal sampling outcome of one chunk of the sweep.
struct ChunkHits {
    /// Hit count per focal record.
    counts: Vec<u64>,
    /// Hit weight vectors per focal record (empty unless the sketch is
    /// retained).
    hits: Vec<Vec<Vec<f64>>>,
}

/// One worker's share of a pooled estimate: raw per-focal hit counts over
/// `samples` independent draws.  Partial estimates from independent sample
/// streams (e.g. one per serving shard) pool by summing hit and sample
/// counts — see [`pool_estimates`].
#[derive(Debug, Clone)]
pub struct PartialEstimate {
    /// Hit count per focal record.
    pub hits: Vec<u64>,
    /// Number of samples drawn.
    pub samples: usize,
    /// Retained hit sketch per focal record (empty unless requested).
    pub sketches: Vec<Vec<Vec<f64>>>,
}

/// Pools partial estimates from independent uniform sample streams into one
/// [`ApproxImpact`] per focal record: hit and sample counts sum, and the
/// combined Hoeffding interval is taken over the **total** sample count (all
/// draws are i.i.d. uniform over the same space and score the same
/// membership indicator, so the pooled counter is a plain Binomial in the
/// pooled sample size).
///
/// # Panics
/// Panics if `partials` is empty, the partials disagree on the focal count,
/// or the total sample count is zero.
pub fn pool_estimates(partials: Vec<PartialEstimate>, confidence: f64) -> Vec<ApproxImpact> {
    let focal_count = partials
        .first()
        .expect("at least one partial estimate is required")
        .hits
        .len();
    let total: usize = partials.iter().map(|p| p.samples).sum();
    let half_width = hoeffding_half_width(confidence, total);
    let mut counts = vec![0u64; focal_count];
    let mut hits: Vec<Vec<Vec<f64>>> = vec![Vec::new(); focal_count];
    for partial in partials {
        assert_eq!(partial.hits.len(), focal_count, "focal count mismatch");
        for (slot, count) in counts.iter_mut().zip(&partial.hits) {
            *slot += count;
        }
        for (all, sketch) in hits.iter_mut().zip(partial.sketches) {
            all.extend(sketch);
        }
    }
    counts
        .into_iter()
        .zip(hits)
        .map(|(count, hits)| ApproxImpact {
            impact: count as f64 / total as f64,
            half_width,
            samples: total,
            hits,
        })
        .collect()
}

/// A Monte-Carlo kSPR sampler over an epoch-consistent dataset snapshot.
///
/// Construction copies the candidate attribute values into an owned columnar
/// (structure-of-arrays) block: the sampler holds no reference into the live
/// dataset, so a mutable [`kspr::DatasetStore`] (or [`QueryEngine`]) that
/// applies inserts/deletes while an `ApproxEngine` is alive can never skew
/// an estimate half-way through its sample stream — every estimate reflects
/// exactly the records that were live at construction time.  The per-sample
/// scoring sweep is one [`ColumnarBlock::scores_into`] call — a contiguous
/// dot-product kernel per attribute column, bit-identical to the row-major
/// loop it replaced.
pub struct ApproxEngine {
    /// Candidate attribute values, column-major — all live records, or the
    /// result-preserving k-skyband subset.
    block: ColumnarBlock,
    dim: usize,
    space: PreferenceSpace,
    k: usize,
}

impl ApproxEngine {
    /// A sampler over every live record of `dataset`, in the transformed
    /// preference space.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn from_dataset(dataset: &Dataset, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        let candidates: Vec<RecordId> = dataset.live_records().map(|r| r.id).collect();
        Self::over_candidates(
            dataset,
            &candidates,
            PreferenceSpace::transformed(dataset.dim()),
            k,
        )
    }

    /// A sampler over the engine's dataset snapshot, restricted to the
    /// cached dataset-level k-skyband — the result-preserving candidate
    /// pruning (see the module docs) that typically shrinks the per-sample
    /// probe from all `n` records to a few hundred band members.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn from_engine(engine: &QueryEngine, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        let dataset = engine.dataset();
        let candidates = if dataset.is_empty() {
            Vec::new()
        } else {
            engine.shared_prep_for(k).skyband().to_vec()
        };
        let space = PreferenceSpace::new(dataset.dim(), engine.config().space);
        Self::over_candidates(dataset, &candidates, space, k)
    }

    fn over_candidates(
        dataset: &Dataset,
        candidates: &[RecordId],
        space: PreferenceSpace,
        k: usize,
    ) -> Self {
        let dim = dataset.dim();
        let block = ColumnarBlock::from_rows(dim, candidates.iter().map(|&id| dataset.values(id)));
        Self {
            block,
            dim,
            space,
            k,
        }
    }

    /// The rank threshold the sampler probes.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of candidate records each sample scores.
    pub fn num_candidates(&self) -> usize {
        self.block.len()
    }

    /// The preference space samples are drawn from.
    pub fn space(&self) -> PreferenceSpace {
        self.space
    }

    /// Estimates the market impact of one focal record to the budget.
    pub fn estimate(&self, focal: &[f64], budget: &ErrorBudget, seed: u64) -> ApproxImpact {
        self.estimate_batch(std::slice::from_ref(&focal.to_vec()), budget, seed)
            .pop()
            .expect("one focal in, one estimate out")
    }

    /// Estimates the market impact of every focal record in `focals` to the
    /// budget, through one shared sampling sweep (see the module docs); the
    /// results are bit-identical to estimating each focal record alone with
    /// the same seed.
    ///
    /// # Panics
    /// Panics if any focal arity does not match the dataset.
    pub fn estimate_batch(
        &self,
        focals: &[Vec<f64>],
        budget: &ErrorBudget,
        seed: u64,
    ) -> Vec<ApproxImpact> {
        self.estimate_batch_with(focals, budget, seed, &ApproxOptions::default())
    }

    /// [`ApproxEngine::estimate_batch`] with explicit [`ApproxOptions`].
    pub fn estimate_batch_with(
        &self,
        focals: &[Vec<f64>],
        budget: &ErrorBudget,
        seed: u64,
        options: &ApproxOptions,
    ) -> Vec<ApproxImpact> {
        self.estimate_batch_samples(focals, budget.samples(), budget.confidence, seed, options)
    }

    /// The sweep under an explicit sample count (the entry point the sharded
    /// serving layer uses to allocate one global sample budget across
    /// shards; per-shard partial estimates pool by summing hit and sample
    /// counts).
    ///
    /// # Panics
    /// Panics if `samples == 0`, `confidence` is outside `(0, 1)`, or any
    /// focal arity does not match the dataset.
    pub fn estimate_batch_samples(
        &self,
        focals: &[Vec<f64>],
        samples: usize,
        confidence: f64,
        seed: u64,
        options: &ApproxOptions,
    ) -> Vec<ApproxImpact> {
        if focals.is_empty() {
            // Still validate the request shape.
            let _ = hoeffding_half_width(confidence, samples);
            return Vec::new();
        }
        pool_estimates(
            vec![self.sample_batch(focals, samples, seed, options)],
            confidence,
        )
    }

    /// Draws `samples` preference vectors from `seed` and probes every focal
    /// record against each, returning the raw per-focal hit counts — the
    /// poolable building block of an estimate (see [`pool_estimates`]).  The
    /// sweep shares the per-sample candidate scoring across the batch and
    /// parallelizes over chunks of the sample stream; chunk results merge in
    /// stream order, so the outcome is independent of the worker count.
    ///
    /// # Panics
    /// Panics if `samples == 0` or any focal arity does not match the
    /// dataset.
    pub fn sample_batch(
        &self,
        focals: &[Vec<f64>],
        samples: usize,
        seed: u64,
        options: &ApproxOptions,
    ) -> PartialEstimate {
        assert!(samples > 0, "at least one sample is required");
        for focal in focals {
            assert_eq!(
                focal.len(),
                self.dim,
                "focal record arity must match the dataset"
            );
        }

        let mut rng = SmallRng::seed_from_u64(seed);
        let points = self.space.sample_many(samples, &mut rng);

        let workers = rayon::current_num_threads().max(1);
        let chunk_len = samples.div_ceil(workers).max(1);
        let chunks: Vec<&[Vec<f64>]> = points.chunks(chunk_len).collect();
        let partials: Vec<ChunkHits> = chunks
            .par_iter()
            .map(|chunk| self.sweep_chunk(chunk, focals, options))
            .collect();

        let mut counts = vec![0u64; focals.len()];
        let mut hits: Vec<Vec<Vec<f64>>> = vec![Vec::new(); focals.len()];
        for partial in partials {
            for (total, count) in counts.iter_mut().zip(&partial.counts) {
                *total += count;
            }
            if options.keep_hits {
                for (all, chunk_hits) in hits.iter_mut().zip(partial.hits) {
                    all.extend(chunk_hits);
                }
            }
        }
        PartialEstimate {
            hits: counts,
            samples,
            sketches: hits,
        }
    }

    /// Scores one chunk of samples against the candidate set: per sample,
    /// every candidate's score and the `k`-th largest are computed once;
    /// each focal record's probe is then one dot product and comparison.
    fn sweep_chunk(
        &self,
        chunk: &[Vec<f64>],
        focals: &[Vec<f64>],
        options: &ApproxOptions,
    ) -> ChunkHits {
        let k = self.k;
        let d = self.dim;
        let m = self.num_candidates();
        let mut counts = vec![0u64; focals.len()];
        let mut hits: Vec<Vec<Vec<f64>>> = vec![Vec::new(); focals.len()];
        // Scores are recomputed per sample, so the in-place select below may
        // freely scramble the buffer.
        let mut scores = vec![0.0f64; m];
        for w in chunk {
            let full = self.space.to_full_weight(w);
            let weight = &full[..d];
            // Columnar kernel: accumulates in ascending attribute order,
            // bit-identical to `dot` over a row.
            self.block.scores_into(weight, &mut scores);
            // The k-th largest candidate score: the focal record is in the
            // top-k iff fewer than k candidates score strictly above it,
            // i.e. iff that k-th largest score does not exceed the focal
            // score (fewer than k candidates means everyone is top-k).
            let threshold = if m < k {
                f64::NEG_INFINITY
            } else {
                let idx = m - k;
                *scores
                    .select_nth_unstable_by(idx, |a, b| {
                        a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .1
            };
            for (slot, focal) in focals.iter().enumerate() {
                if threshold <= dot(focal, weight) + TIE_EPS {
                    counts[slot] += 1;
                    if options.keep_hits {
                        hits[slot].push(w.clone());
                    }
                }
            }
        }
        ChunkHits { counts, hits }
    }
}

/// Answers one query through the engine's configured [`QueryTier`]
/// (`engine.config().tier`): `Exact` passes through to
/// [`QueryEngine::run`] untouched, `Approximate` samples to the budget over
/// an epoch-consistent snapshot, and `Auto` routes by [`estimated_cost`]
/// against the tier's threshold.  `seed` drives the sampler only (exact
/// queries are deterministic).
///
/// # Panics
/// Panics if `k == 0` or the focal arity does not match the dataset.
pub fn run_tiered(
    engine: &QueryEngine,
    algorithm: Algorithm,
    focal: &[f64],
    k: usize,
    seed: u64,
) -> TieredResult {
    run_tiered_batch(
        engine,
        algorithm,
        std::slice::from_ref(&focal.to_vec()),
        k,
        seed,
    )
    .pop()
    .expect("one focal in, one result out")
}

/// The batch analogue of [`run_tiered`].  The routing decision is
/// focal-independent (dataset statistics and `k` only), so a batch always
/// runs entirely in one tier: exact batches through
/// [`QueryEngine::run_batch`] (shared preprocessing, parallel workers),
/// approximate batches through one shared sampling sweep.
pub fn run_tiered_batch(
    engine: &QueryEngine,
    algorithm: Algorithm,
    focals: &[Vec<f64>],
    k: usize,
    seed: u64,
) -> Vec<TieredResult> {
    assert!(k >= 1, "k must be at least 1");
    let budget = engine.config().tier.resolve(|| estimated_cost(engine, k));
    match budget {
        None => engine
            .run_batch(algorithm, focals, k)
            .into_iter()
            .map(TieredResult::Exact)
            .collect(),
        Some(budget) => ApproxEngine::from_engine(engine, k)
            .estimate_batch(focals, &budget, seed)
            .into_iter()
            .map(TieredResult::Approximate)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspr::KsprConfig;
    use rand::Rng;

    fn random_raw(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(0.01..0.99)).collect())
            .collect()
    }

    #[test]
    fn batched_estimates_are_bit_identical_to_single_estimates() {
        let dataset = Dataset::new(random_raw(250, 4, 1));
        let sampler = ApproxEngine::from_dataset(&dataset, 6);
        let budget = ErrorBudget::new(0.08, 0.9);
        let focals: Vec<Vec<f64>> = random_raw(5, 4, 2);
        let batch = sampler.estimate_batch_with(&focals, &budget, 7, &ApproxOptions::with_hits());
        for (focal, from_batch) in focals.iter().zip(&batch) {
            let alone = sampler
                .estimate_batch_with(
                    std::slice::from_ref(focal),
                    &budget,
                    7,
                    &ApproxOptions::with_hits(),
                )
                .pop()
                .unwrap();
            assert_eq!(
                from_batch.impact, alone.impact,
                "shared sweep must not change hits"
            );
            assert_eq!(from_batch.samples, alone.samples);
            assert_eq!(from_batch.hits, alone.hits, "same seed, same sketch");
        }
    }

    #[test]
    fn skyband_candidates_are_result_preserving() {
        // The witness argument in action: the band-restricted sampler makes
        // the same hit decision as the full live record set on every sample
        // (same seed => same sample stream => bit-identical estimates).
        let raw = random_raw(400, 3, 3);
        let dataset = Dataset::new(raw);
        let k = 5;
        let engine = QueryEngine::new(&dataset, KsprConfig::default());
        let banded = ApproxEngine::from_engine(&engine, k);
        let full = ApproxEngine::from_dataset(&dataset, k);
        assert!(
            banded.num_candidates() < full.num_candidates() / 2,
            "the band must prune most of n={} (got {})",
            full.num_candidates(),
            banded.num_candidates()
        );
        let budget = ErrorBudget::new(0.05, 0.95);
        let focals = random_raw(4, 3, 4);
        let a = banded.estimate_batch_with(&focals, &budget, 11, &ApproxOptions::with_hits());
        let b = full.estimate_batch_with(&focals, &budget, 11, &ApproxOptions::with_hits());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.impact, y.impact, "pruning changed a hit decision");
            assert_eq!(x.hits, y.hits);
        }
    }

    #[test]
    fn estimates_agree_with_the_brute_force_oracle() {
        // Every hit (and non-hit) decision matches kspr::naive on the same
        // live records — the sweep's threshold trick is just a faster
        // evaluation of the same definition.
        let raw = random_raw(120, 3, 5);
        let dataset = Dataset::new(raw.clone());
        let k = 4;
        let sampler = ApproxEngine::from_dataset(&dataset, k);
        let focal = vec![0.8, 0.75, 0.7];
        let budget = ErrorBudget::new(0.1, 0.9);
        let estimate = sampler
            .estimate_batch_with(
                std::slice::from_ref(&focal),
                &budget,
                13,
                &ApproxOptions::with_hits(),
            )
            .pop()
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(13);
        let points = sampler.space().sample_many(estimate.samples, &mut rng);
        let mut oracle_hits = 0usize;
        for w in &points {
            let full = sampler.space().to_full_weight(w);
            if kspr::naive::is_top_k(&raw, &focal, &full, k) {
                oracle_hits += 1;
            }
        }
        assert_eq!(
            estimate.hits.len(),
            oracle_hits,
            "sweep and oracle disagree on the same sample stream"
        );
        assert_eq!(
            estimate.impact,
            oracle_hits as f64 / estimate.samples as f64
        );
    }

    #[test]
    fn snapshot_is_epoch_consistent_under_updates() {
        let raw = random_raw(80, 3, 7);
        let mut engine = QueryEngine::new(&Dataset::new(raw), KsprConfig::default());
        let focal = vec![0.7, 0.7, 0.7];
        let budget = ErrorBudget::new(0.1, 0.9);

        let sampler = ApproxEngine::from_engine(&engine, 3);
        let before = sampler.estimate(&focal, &budget, 17);

        // A burst of dominators lands mid-flight; the held snapshot must not
        // see them, while a fresh sampler must.
        for _ in 0..3 {
            engine.insert(vec![0.99, 0.99, 0.99]);
        }
        let after_on_snapshot = sampler.estimate(&focal, &budget, 17);
        assert_eq!(
            before.impact, after_on_snapshot.impact,
            "an in-flight snapshot must not observe updates"
        );
        let fresh = ApproxEngine::from_engine(&engine, 3).estimate(&focal, &budget, 17);
        assert_eq!(fresh.impact, 0.0, "three dominators end every top-3 hope");
    }

    #[test]
    fn interval_brackets_the_exact_impact() {
        let raw = random_raw(200, 3, 9);
        let engine = QueryEngine::new(&Dataset::new(raw), KsprConfig::default());
        let k = 6;
        let focal = vec![0.8, 0.7, 0.75];
        let exact = engine.run(Algorithm::LpCta, &focal, k);
        // d = 3 => 2 working dimensions: polygon areas are exact.
        let true_impact = exact.total_volume(0, 0) / exact.space.volume();
        let estimate = ApproxEngine::from_engine(&engine, k).estimate(
            &focal,
            &ErrorBudget::new(0.05, 0.99),
            23,
        );
        assert!(
            estimate.covers(true_impact),
            "interval [{}, {}] misses the exact impact {true_impact}",
            estimate.lower(),
            estimate.upper()
        );
    }

    #[test]
    fn empty_dataset_has_impact_one() {
        let mut store = kspr::DatasetStore::from_raw(vec![vec![0.4, 0.5], vec![0.6, 0.3]]);
        store.delete(0);
        store.delete(1);
        let sampler = ApproxEngine::from_dataset(store.dataset(), 1);
        assert_eq!(sampler.num_candidates(), 0);
        let estimate = sampler.estimate(&[0.5, 0.5], &ErrorBudget::new(0.1, 0.9), 29);
        assert_eq!(estimate.impact, 1.0, "no competitor: trivially top-1");
    }

    #[test]
    fn tier_dispatch_routes_per_config() {
        let raw = random_raw(150, 3, 31);
        let dataset = Dataset::new(raw);
        let focal = vec![0.75, 0.7, 0.7];
        let k = 4;
        let budget = ErrorBudget::new(0.05, 0.95);

        // Exact tier: a pure passthrough (identical work counters).
        let exact_engine = QueryEngine::new(&dataset, KsprConfig::default());
        let direct = exact_engine.run(Algorithm::LpCta, &focal, k);
        match run_tiered(&exact_engine, Algorithm::LpCta, &focal, k, 1) {
            TieredResult::Exact(result) => {
                assert_eq!(result.num_regions(), direct.num_regions());
                assert_eq!(
                    result.stats.processed_records,
                    direct.stats.processed_records
                );
                assert_eq!(result.stats.celltree_nodes, direct.stats.celltree_nodes);
            }
            TieredResult::Approximate(_) => panic!("Exact tier must never sample"),
        }

        // Approximate tier: a budget-conforming estimate.
        let approx_engine = QueryEngine::new(
            &dataset,
            KsprConfig::default().with_tier(QueryTier::approximate(budget)),
        );
        match run_tiered(&approx_engine, Algorithm::LpCta, &focal, k, 1) {
            TieredResult::Approximate(estimate) => {
                assert!(estimate.half_width <= budget.epsilon + 1e-12);
                assert_eq!(estimate.samples, budget.samples());
            }
            TieredResult::Exact(_) => panic!("Approximate tier must never run exactly"),
        }

        // Auto: an extreme threshold forces each side.
        for (threshold, expect_exact) in [(f64::INFINITY, true), (0.0, false)] {
            let auto_engine = QueryEngine::new(
                &dataset,
                KsprConfig::default().with_tier(QueryTier::Auto {
                    budget,
                    cost_threshold: threshold,
                }),
            );
            let routed = run_tiered(&auto_engine, Algorithm::LpCta, &focal, k, 1);
            assert_eq!(
                routed.is_exact(),
                expect_exact,
                "threshold {threshold} routed the wrong way"
            );
        }
    }

    #[test]
    fn auto_cost_grows_with_k_and_dimension() {
        let low = QueryEngine::new(&Dataset::new(random_raw(300, 3, 33)), KsprConfig::default());
        let high = QueryEngine::new(&Dataset::new(random_raw(300, 5, 33)), KsprConfig::default());
        assert!(estimated_cost(&low, 2) < estimated_cost(&low, 12));
        assert!(estimated_cost(&low, 8) < estimated_cost(&high, 8));
        assert_eq!(arrangement_cost(10, 2), 100.0);
        assert_eq!(arrangement_cost(0, 3), 1.0, "no candidates, unit cost");
    }

    #[test]
    fn tiered_batch_matches_per_query_dispatch() {
        let raw = random_raw(100, 3, 35);
        let budget = ErrorBudget::new(0.1, 0.9);
        let engine = QueryEngine::new(
            &Dataset::new(raw),
            KsprConfig::default().with_tier(QueryTier::approximate(budget)),
        );
        let focals = random_raw(4, 3, 36);
        let batch = run_tiered_batch(&engine, Algorithm::LpCta, &focals, 3, 41);
        assert_eq!(batch.len(), focals.len());
        for (focal, result) in focals.iter().zip(&batch) {
            let alone = run_tiered(&engine, Algorithm::LpCta, focal, 3, 41);
            assert_eq!(
                result.as_approximate().unwrap().impact,
                alone.as_approximate().unwrap().impact,
                "batched and single dispatch disagree"
            );
        }
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn sampler_rejects_zero_k() {
        let dataset = Dataset::new(vec![vec![0.5, 0.5]]);
        ApproxEngine::from_dataset(&dataset, 0);
    }

    #[test]
    #[should_panic(expected = "arity must match")]
    fn sampler_rejects_arity_mismatch() {
        let dataset = Dataset::new(vec![vec![0.5, 0.5]]);
        ApproxEngine::from_dataset(&dataset, 1).estimate(
            &[0.5, 0.5, 0.5],
            &ErrorBudget::default(),
            1,
        );
    }
}
