//! # kspr-wire — the wire protocol of the kSPR serving stack
//!
//! A versioned, length-prefixed binary protocol between kSPR clients and
//! the `kspr-serve` network front-end.  Every message travels as one frame:
//!
//! ```text
//! [len: u32 LE][payload: len bytes]
//! payload v2 = [2: u8][opcode: u8][trace flag: u8][trace id: u64 LE, iff flag = 1][fields...]
//! payload v1 = [1: u8][opcode: u8][fields...]
//! ```
//!
//! Version 2 adds an optional **trace id** between the opcode and the
//! fields: a client that supplies one gets it echoed on the response and can
//! later fetch the server-side span tree for that request from the flight
//! recorder.  Version-1 frames (no trace slot) still decode, and the client
//! can emit them via the `encode_legacy` entry points, so old and new peers
//! interoperate in both directions.
//!
//! The codec is hand-rolled (the workspace builds offline, so no serde):
//! every field is little-endian fixed-width or a `u32`-counted sequence, and
//! decoding is strict — unknown versions, unknown opcodes, bad trace flags,
//! truncated fields and trailing bytes all fail, never alias to another
//! message.
//!
//! Results cross the wire as **summaries** ([`ResultSummary`]): region
//! count, whole-space flag and the sorted rank signature — the quantities
//! every consistency proptest in this repo compares — rather than the full
//! region geometry, which is unbounded (a half-space list per region) and
//! which no remote consumer of the reproduction needs.  Approximate answers
//! cross as the full estimate triple ([`ApproxSummary`]), which *is* the
//! answer.
//!
//! [`WireClient`] wraps any `Read + Write` stream (typically a `TcpStream`)
//! in a blocking request/response exchange against the serve crate's
//! `NetServer`.

pub mod codec;
pub mod message;

pub use codec::{read_frame, read_frame_body, write_frame, FrameError, MAX_FRAME};
pub use message::{
    ApproxSummary, ErrorCode, HistogramSummary, MetricsReport, ResultSummary, TierSpec,
    WireRequest, WireResponse,
};

use std::io::{Read, Write};

/// Protocol version carried in every payload this crate encodes.
pub const WIRE_VERSION: u8 = 2;

/// The previous protocol version (no trace-id slot), still accepted on
/// decode so deployed peers keep working across the bump.
pub const LEGACY_WIRE_VERSION: u8 = 1;

/// A blocking request/response client over any framed byte stream.
///
/// ```no_run
/// use kspr_wire::{WireClient, WireRequest, WireResponse};
/// let stream = std::net::TcpStream::connect("127.0.0.1:7878").unwrap();
/// let mut client = WireClient::new(stream);
/// match client.call(&WireRequest::Ping).unwrap() {
///     WireResponse::Pong => {}
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
pub struct WireClient<S> {
    stream: S,
}

impl<S: Read + Write> WireClient<S> {
    /// Wraps a connected stream.
    pub fn new(stream: S) -> Self {
        Self { stream }
    }

    /// Consumes the client, returning the underlying stream.
    pub fn into_inner(self) -> S {
        self.stream
    }

    /// Sends one request and blocks for its response.
    pub fn call(&mut self, request: &WireRequest) -> Result<WireResponse, FrameError> {
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream)?;
        WireResponse::decode(&payload).ok_or(FrameError::Malformed)
    }

    /// Sends one request carrying an optional client-chosen trace id and
    /// blocks for its response, returning the trace id the server echoed
    /// (normally the one sent; `None` from a legacy peer).
    pub fn call_traced(
        &mut self,
        request: &WireRequest,
        trace_id: Option<u64>,
    ) -> Result<(WireResponse, Option<u64>), FrameError> {
        write_frame(&mut self.stream, &request.encode_traced(trace_id))?;
        let payload = read_frame(&mut self.stream)?;
        WireResponse::decode_traced(&payload).ok_or(FrameError::Malformed)
    }
}
