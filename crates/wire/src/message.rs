//! The request/response message set and its byte codec.

use crate::codec::{
    get_f64, get_row, get_str, get_u32, get_u64, get_u8, put_f64, put_row, put_str, put_u64,
};
use crate::{LEGACY_WIRE_VERSION, WIRE_VERSION};
use kspr::approximate::{ErrorBudget, QueryTier};
use kspr::Algorithm;

/// A tier request as it travels on the wire — plain numbers, no validation.
///
/// The serving side converts with [`TierSpec::to_tier`], which rejects
/// out-of-range budgets instead of panicking the dispatcher.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TierSpec {
    /// Run the exact engine.
    Exact,
    /// Run the sampler under an `(epsilon, confidence)` budget.
    Approximate {
        /// Maximum interval half-width, in `(0, 1)`.
        epsilon: f64,
        /// Two-sided confidence level, in `(0, 1)`.
        confidence: f64,
    },
    /// Cost-based routing between the two.
    Auto {
        /// Maximum interval half-width of the sampling fallback.
        epsilon: f64,
        /// Two-sided confidence level of the sampling fallback.
        confidence: f64,
        /// Largest estimated arrangement cost still routed exactly.
        cost_threshold: f64,
    },
}

impl TierSpec {
    /// Converts to the engine's [`QueryTier`], rejecting invalid budgets.
    pub fn to_tier(self) -> Option<QueryTier> {
        let budget = |epsilon: f64, confidence: f64| {
            (epsilon > 0.0 && epsilon < 1.0 && confidence > 0.0 && confidence < 1.0).then_some(
                ErrorBudget {
                    epsilon,
                    confidence,
                },
            )
        };
        Some(match self {
            TierSpec::Exact => QueryTier::Exact,
            TierSpec::Approximate {
                epsilon,
                confidence,
            } => QueryTier::Approximate {
                budget: budget(epsilon, confidence)?,
            },
            TierSpec::Auto {
                epsilon,
                confidence,
                cost_threshold,
            } => {
                if !cost_threshold.is_finite() || cost_threshold < 0.0 {
                    return None;
                }
                QueryTier::Auto {
                    budget: budget(epsilon, confidence)?,
                    cost_threshold,
                }
            }
        })
    }
}

impl From<QueryTier> for TierSpec {
    fn from(tier: QueryTier) -> Self {
        match tier {
            QueryTier::Exact => TierSpec::Exact,
            QueryTier::Approximate { budget } => TierSpec::Approximate {
                epsilon: budget.epsilon,
                confidence: budget.confidence,
            },
            QueryTier::Auto {
                budget,
                cost_threshold,
            } => TierSpec::Auto {
                epsilon: budget.epsilon,
                confidence: budget.confidence,
                cost_threshold,
            },
        }
    }
}

/// What a client can ask the serving stack to do.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest {
    /// Liveness probe.
    Ping,
    /// One exact query.
    Query {
        /// Algorithm to run.
        algorithm: Algorithm,
        /// The focal record.
        focal: Vec<f64>,
        /// The query's `k`.
        k: u64,
    },
    /// One tier-dispatched query (the path admission control may degrade).
    Tiered {
        /// Algorithm of the exact path.
        algorithm: Algorithm,
        /// The focal record.
        focal: Vec<f64>,
        /// The query's `k`.
        k: u64,
        /// Requested tier.
        tier: TierSpec,
    },
    /// Insert one record.
    Insert {
        /// The record's attribute values.
        values: Vec<f64>,
    },
    /// Delete a record by global id.
    Delete {
        /// The global record id.
        id: u64,
    },
    /// Register a standing query.
    Subscribe {
        /// Algorithm maintaining the standing result.
        algorithm: Algorithm,
        /// The focal record.
        focal: Vec<f64>,
        /// The query's `k`.
        k: u64,
    },
    /// Unregister a standing query by its wire token.
    Unsubscribe {
        /// Token returned by `Subscribed`.
        token: u64,
    },
    /// Drain the pending result deltas of a standing query.
    PollDeltas {
        /// Token returned by `Subscribed`.
        token: u64,
    },
    /// Admin: number of registered standing queries.
    Subscriptions,
    /// Admin: serving counters snapshot.
    Stats,
    /// Admin: live telemetry snapshot (counters, gauges, latency-histogram
    /// summaries).
    Metrics,
}

/// Exact-result summary crossing the wire: the quantities the repo's
/// consistency suites compare (region count, whole-space flag, sorted rank
/// signature), not the unbounded region geometry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSummary {
    /// Number of maximal kSPR regions.
    pub num_regions: u64,
    /// Whether the result covers the whole preference space.
    pub whole_space: bool,
    /// Sorted multiset of region ranks.
    pub rank_signature: Vec<u64>,
}

/// One latency histogram's wire summary: the quantile digest, not the
/// bucket array — enough for dashboards and the scrape demos, a fraction of
/// the bytes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// The histogram's registry name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of recorded values (nanoseconds for latency histograms).
    pub sum: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

/// The live telemetry snapshot crossing the wire: labelled counters and
/// gauges plus one [`HistogramSummary`] per latency histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsReport {
    /// `(name, value)` counter pairs, order-stable per server build.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauge pairs.
    pub gauges: Vec<(String, u64)>,
    /// One summary per histogram.
    pub histograms: Vec<HistogramSummary>,
}

/// Approximate answer crossing the wire (this *is* the full answer).
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxSummary {
    /// Point estimate of the market impact in `[0, 1]`.
    pub impact: f64,
    /// Half-width of the confidence interval.
    pub half_width: f64,
    /// Samples drawn.
    pub samples: u64,
}

/// Machine-readable failure class of a [`WireResponse::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The frame decoded to no valid request.
    Malformed = 1,
    /// The request was structurally valid but semantically rejected
    /// (dimension mismatch, `k = 0`, non-finite values, bad budget, ...).
    Invalid = 2,
    /// Admission control rejected the request: the queue is past its hard
    /// limit.
    Overloaded = 3,
    /// Admission control rejected the request: the client exhausted its
    /// in-flight quota.
    QuotaExceeded = 4,
    /// The server is shutting down.
    Shutdown = 5,
    /// The referenced subscription token is unknown on this connection.
    UnknownToken = 6,
    /// The dispatcher failed internally.
    Internal = 7,
}

impl ErrorCode {
    fn decode(raw: u16) -> Option<Self> {
        Some(match raw {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::Invalid,
            3 => ErrorCode::Overloaded,
            4 => ErrorCode::QuotaExceeded,
            5 => ErrorCode::Shutdown,
            6 => ErrorCode::UnknownToken,
            7 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// What the serving stack answers.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResponse {
    /// The request failed; `code` is machine-readable, `message` is for
    /// humans.
    Error {
        /// Failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Answer to `Ping`.
    Pong,
    /// An exact result summary (answers `Query`, and `Tiered` when the
    /// exact engine ran).
    Result(ResultSummary),
    /// An approximate estimate (answers `Tiered` when the sampler ran —
    /// whether by request or by admission-control degradation).
    Approx(ApproxSummary),
    /// Answer to `Insert`: the new record's global id.
    Inserted {
        /// The assigned global id.
        id: u64,
    },
    /// Answer to `Delete`.
    Deleted {
        /// Whether a live record was removed.
        removed: bool,
    },
    /// Answer to `Subscribe`.
    Subscribed {
        /// Connection-scoped token for `PollDeltas` / `Unsubscribe`.
        token: u64,
        /// The standing query's initial result.
        initial: ResultSummary,
    },
    /// Answer to `Unsubscribe`.
    Unsubscribed {
        /// Whether the standing query was still registered.
        removed: bool,
    },
    /// Answer to `PollDeltas`: the drained result summaries, oldest first.
    Deltas {
        /// One summary per delta since the last poll.
        summaries: Vec<ResultSummary>,
        /// Whether the server closed the delta stream.
        closed: bool,
    },
    /// Answer to `Subscriptions`.
    Count {
        /// The requested count.
        value: u64,
    },
    /// Answer to `Stats`: labelled counters, order-stable per server build.
    Stats {
        /// `(name, value)` counter pairs.
        fields: Vec<(String, u64)>,
    },
    /// Answer to `Metrics`: the live telemetry snapshot.
    Metrics(MetricsReport),
}

const REQ_PING: u8 = 1;
const REQ_QUERY: u8 = 2;
const REQ_TIERED: u8 = 3;
const REQ_INSERT: u8 = 4;
const REQ_DELETE: u8 = 5;
const REQ_SUBSCRIBE: u8 = 6;
const REQ_UNSUBSCRIBE: u8 = 7;
const REQ_POLL_DELTAS: u8 = 8;
const REQ_SUBSCRIPTIONS: u8 = 9;
const REQ_STATS: u8 = 10;
const REQ_METRICS: u8 = 11;

const RESP_ERROR: u8 = 0;
const RESP_PONG: u8 = 1;
const RESP_RESULT: u8 = 2;
const RESP_APPROX: u8 = 3;
const RESP_INSERTED: u8 = 4;
const RESP_DELETED: u8 = 5;
const RESP_SUBSCRIBED: u8 = 6;
const RESP_UNSUBSCRIBED: u8 = 7;
const RESP_DELTAS: u8 = 8;
const RESP_COUNT: u8 = 9;
const RESP_STATS: u8 = 10;
const RESP_METRICS: u8 = 11;

const TIER_EXACT: u8 = 0;
const TIER_APPROX: u8 = 1;
const TIER_AUTO: u8 = 2;

fn put_algorithm(out: &mut Vec<u8>, algorithm: Algorithm) {
    out.push(match algorithm {
        Algorithm::Cta => 0,
        Algorithm::Pcta => 1,
        Algorithm::LpCta => 2,
        Algorithm::KSkyband => 3,
        Algorithm::Rtopk => 4,
        Algorithm::IMaxRank => 5,
    });
}

fn get_algorithm(bytes: &[u8], at: &mut usize) -> Option<Algorithm> {
    Some(match get_u8(bytes, at)? {
        0 => Algorithm::Cta,
        1 => Algorithm::Pcta,
        2 => Algorithm::LpCta,
        3 => Algorithm::KSkyband,
        4 => Algorithm::Rtopk,
        5 => Algorithm::IMaxRank,
        _ => return None,
    })
}

fn put_tier(out: &mut Vec<u8>, tier: TierSpec) {
    match tier {
        TierSpec::Exact => out.push(TIER_EXACT),
        TierSpec::Approximate {
            epsilon,
            confidence,
        } => {
            out.push(TIER_APPROX);
            put_f64(out, epsilon);
            put_f64(out, confidence);
        }
        TierSpec::Auto {
            epsilon,
            confidence,
            cost_threshold,
        } => {
            out.push(TIER_AUTO);
            put_f64(out, epsilon);
            put_f64(out, confidence);
            put_f64(out, cost_threshold);
        }
    }
}

fn get_tier(bytes: &[u8], at: &mut usize) -> Option<TierSpec> {
    Some(match get_u8(bytes, at)? {
        TIER_EXACT => TierSpec::Exact,
        TIER_APPROX => TierSpec::Approximate {
            epsilon: get_f64(bytes, at)?,
            confidence: get_f64(bytes, at)?,
        },
        TIER_AUTO => TierSpec::Auto {
            epsilon: get_f64(bytes, at)?,
            confidence: get_f64(bytes, at)?,
            cost_threshold: get_f64(bytes, at)?,
        },
        _ => return None,
    })
}

fn put_summary(out: &mut Vec<u8>, summary: &ResultSummary) {
    put_u64(out, summary.num_regions);
    out.push(summary.whole_space as u8);
    out.extend_from_slice(&(summary.rank_signature.len() as u32).to_le_bytes());
    for &rank in &summary.rank_signature {
        put_u64(out, rank);
    }
}

fn get_summary(bytes: &[u8], at: &mut usize) -> Option<ResultSummary> {
    let num_regions = get_u64(bytes, at)?;
    let whole_space = match get_u8(bytes, at)? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let n = get_u32(bytes, at)? as usize;
    if n > bytes.len().saturating_sub(*at) / 8 {
        return None;
    }
    let mut rank_signature = Vec::with_capacity(n);
    for _ in 0..n {
        rank_signature.push(get_u64(bytes, at)?);
    }
    Some(ResultSummary {
        num_regions,
        whole_space,
        rank_signature,
    })
}

fn put_fields(out: &mut Vec<u8>, fields: &[(String, u64)]) {
    out.extend_from_slice(&(fields.len() as u32).to_le_bytes());
    for (name, value) in fields {
        put_str(out, name);
        put_u64(out, *value);
    }
}

fn get_fields(bytes: &[u8], at: &mut usize) -> Option<Vec<(String, u64)>> {
    let n = get_u32(bytes, at)? as usize;
    if n > bytes.len().saturating_sub(*at) {
        return None;
    }
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let name = get_str(bytes, at)?;
        let value = get_u64(bytes, at)?;
        fields.push((name, value));
    }
    Some(fields)
}

fn put_histogram_summary(out: &mut Vec<u8>, summary: &HistogramSummary) {
    put_str(out, &summary.name);
    put_u64(out, summary.count);
    put_u64(out, summary.sum);
    put_u64(out, summary.p50);
    put_u64(out, summary.p90);
    put_u64(out, summary.p99);
    put_u64(out, summary.max);
}

fn get_histogram_summary(bytes: &[u8], at: &mut usize) -> Option<HistogramSummary> {
    Some(HistogramSummary {
        name: get_str(bytes, at)?,
        count: get_u64(bytes, at)?,
        sum: get_u64(bytes, at)?,
        p50: get_u64(bytes, at)?,
        p90: get_u64(bytes, at)?,
        p99: get_u64(bytes, at)?,
        max: get_u64(bytes, at)?,
    })
}

fn header(opcode: u8) -> Vec<u8> {
    vec![WIRE_VERSION, opcode, 0]
}

/// Decodes the shared prefix of both supported versions — v2
/// `[version][opcode][trace flag][trace id?]`, v1 `[version][opcode]` —
/// yielding the opcode, the field offset and the trace id (if any).
fn open(payload: &[u8]) -> Option<(u8, usize, Option<u64>)> {
    let mut at = 0;
    let version = get_u8(payload, &mut at)?;
    let opcode = get_u8(payload, &mut at)?;
    let trace_id = match version {
        LEGACY_WIRE_VERSION => None,
        WIRE_VERSION => match get_u8(payload, &mut at)? {
            0 => None,
            1 => Some(get_u64(payload, &mut at)?),
            _ => return None,
        },
        _ => return None,
    };
    Some((opcode, at, trace_id))
}

/// Rewrites an [`header`]-prefixed v2 payload to carry `trace_id`.
fn with_trace(out: Vec<u8>, trace_id: Option<u64>) -> Vec<u8> {
    let Some(id) = trace_id else { return out };
    let mut spliced = Vec::with_capacity(out.len() + 8);
    spliced.extend_from_slice(&out[..2]);
    spliced.push(1);
    spliced.extend_from_slice(&id.to_le_bytes());
    spliced.extend_from_slice(&out[3..]);
    spliced
}

/// Rewrites an [`header`]-prefixed v2 payload (trace flag 0) into the v1
/// framing a legacy peer expects.
fn to_legacy(mut out: Vec<u8>) -> Vec<u8> {
    debug_assert_eq!(out[2], 0, "legacy frames cannot carry a trace id");
    out[0] = LEGACY_WIRE_VERSION;
    out.remove(2);
    out
}

/// Requires the whole payload to have been consumed.
fn finish<T>(value: T, at: usize, payload: &[u8]) -> Option<T> {
    (at == payload.len()).then_some(value)
}

impl WireRequest {
    /// Encodes to one frame payload (version + opcode + fields).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            WireRequest::Ping => header(REQ_PING),
            WireRequest::Query {
                algorithm,
                focal,
                k,
            } => {
                let mut out = header(REQ_QUERY);
                put_algorithm(&mut out, *algorithm);
                put_u64(&mut out, *k);
                put_row(&mut out, focal);
                out
            }
            WireRequest::Tiered {
                algorithm,
                focal,
                k,
                tier,
            } => {
                let mut out = header(REQ_TIERED);
                put_algorithm(&mut out, *algorithm);
                put_u64(&mut out, *k);
                put_tier(&mut out, *tier);
                put_row(&mut out, focal);
                out
            }
            WireRequest::Insert { values } => {
                let mut out = header(REQ_INSERT);
                put_row(&mut out, values);
                out
            }
            WireRequest::Delete { id } => {
                let mut out = header(REQ_DELETE);
                put_u64(&mut out, *id);
                out
            }
            WireRequest::Subscribe {
                algorithm,
                focal,
                k,
            } => {
                let mut out = header(REQ_SUBSCRIBE);
                put_algorithm(&mut out, *algorithm);
                put_u64(&mut out, *k);
                put_row(&mut out, focal);
                out
            }
            WireRequest::Unsubscribe { token } => {
                let mut out = header(REQ_UNSUBSCRIBE);
                put_u64(&mut out, *token);
                out
            }
            WireRequest::PollDeltas { token } => {
                let mut out = header(REQ_POLL_DELTAS);
                put_u64(&mut out, *token);
                out
            }
            WireRequest::Subscriptions => header(REQ_SUBSCRIPTIONS),
            WireRequest::Stats => header(REQ_STATS),
            WireRequest::Metrics => header(REQ_METRICS),
        }
    }

    /// [`WireRequest::encode`] with an optional trace id in the v2 trace
    /// slot.
    pub fn encode_traced(&self, trace_id: Option<u64>) -> Vec<u8> {
        with_trace(self.encode(), trace_id)
    }

    /// Encodes to a version-1 payload (no trace slot) for legacy peers.
    pub fn encode_legacy(&self) -> Vec<u8> {
        to_legacy(self.encode())
    }

    /// Decodes one frame payload; `None` on any structural problem.
    pub fn decode(payload: &[u8]) -> Option<Self> {
        Self::decode_traced(payload).map(|(request, _)| request)
    }

    /// [`WireRequest::decode`] that also yields the trace id the frame
    /// carried, if any.
    pub fn decode_traced(payload: &[u8]) -> Option<(Self, Option<u64>)> {
        let (opcode, mut at, trace_id) = open(payload)?;
        let request = match opcode {
            REQ_PING => WireRequest::Ping,
            REQ_QUERY => WireRequest::Query {
                algorithm: get_algorithm(payload, &mut at)?,
                k: get_u64(payload, &mut at)?,
                focal: get_row(payload, &mut at)?,
            },
            REQ_TIERED => WireRequest::Tiered {
                algorithm: get_algorithm(payload, &mut at)?,
                k: get_u64(payload, &mut at)?,
                tier: get_tier(payload, &mut at)?,
                focal: get_row(payload, &mut at)?,
            },
            REQ_INSERT => WireRequest::Insert {
                values: get_row(payload, &mut at)?,
            },
            REQ_DELETE => WireRequest::Delete {
                id: get_u64(payload, &mut at)?,
            },
            REQ_SUBSCRIBE => WireRequest::Subscribe {
                algorithm: get_algorithm(payload, &mut at)?,
                k: get_u64(payload, &mut at)?,
                focal: get_row(payload, &mut at)?,
            },
            REQ_UNSUBSCRIBE => WireRequest::Unsubscribe {
                token: get_u64(payload, &mut at)?,
            },
            REQ_POLL_DELTAS => WireRequest::PollDeltas {
                token: get_u64(payload, &mut at)?,
            },
            REQ_SUBSCRIPTIONS => WireRequest::Subscriptions,
            REQ_STATS => WireRequest::Stats,
            REQ_METRICS => WireRequest::Metrics,
            _ => return None,
        };
        finish((request, trace_id), at, payload)
    }
}

impl WireResponse {
    /// Encodes to one frame payload (version + opcode + fields).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            WireResponse::Error { code, message } => {
                let mut out = header(RESP_ERROR);
                out.extend_from_slice(&(*code as u16).to_le_bytes());
                put_str(&mut out, message);
                out
            }
            WireResponse::Pong => header(RESP_PONG),
            WireResponse::Result(summary) => {
                let mut out = header(RESP_RESULT);
                put_summary(&mut out, summary);
                out
            }
            WireResponse::Approx(summary) => {
                let mut out = header(RESP_APPROX);
                put_f64(&mut out, summary.impact);
                put_f64(&mut out, summary.half_width);
                put_u64(&mut out, summary.samples);
                out
            }
            WireResponse::Inserted { id } => {
                let mut out = header(RESP_INSERTED);
                put_u64(&mut out, *id);
                out
            }
            WireResponse::Deleted { removed } => {
                let mut out = header(RESP_DELETED);
                out.push(*removed as u8);
                out
            }
            WireResponse::Subscribed { token, initial } => {
                let mut out = header(RESP_SUBSCRIBED);
                put_u64(&mut out, *token);
                put_summary(&mut out, initial);
                out
            }
            WireResponse::Unsubscribed { removed } => {
                let mut out = header(RESP_UNSUBSCRIBED);
                out.push(*removed as u8);
                out
            }
            WireResponse::Deltas { summaries, closed } => {
                let mut out = header(RESP_DELTAS);
                out.push(*closed as u8);
                out.extend_from_slice(&(summaries.len() as u32).to_le_bytes());
                for summary in summaries {
                    put_summary(&mut out, summary);
                }
                out
            }
            WireResponse::Count { value } => {
                let mut out = header(RESP_COUNT);
                put_u64(&mut out, *value);
                out
            }
            WireResponse::Stats { fields } => {
                let mut out = header(RESP_STATS);
                put_fields(&mut out, fields);
                out
            }
            WireResponse::Metrics(report) => {
                let mut out = header(RESP_METRICS);
                put_fields(&mut out, &report.counters);
                put_fields(&mut out, &report.gauges);
                out.extend_from_slice(&(report.histograms.len() as u32).to_le_bytes());
                for summary in &report.histograms {
                    put_histogram_summary(&mut out, summary);
                }
                out
            }
        }
    }

    /// [`WireResponse::encode`] with an optional trace id in the v2 trace
    /// slot (servers echo the id the request carried).
    pub fn encode_traced(&self, trace_id: Option<u64>) -> Vec<u8> {
        with_trace(self.encode(), trace_id)
    }

    /// Encodes to a version-1 payload (no trace slot) for legacy peers.
    pub fn encode_legacy(&self) -> Vec<u8> {
        to_legacy(self.encode())
    }

    /// Decodes one frame payload; `None` on any structural problem.
    pub fn decode(payload: &[u8]) -> Option<Self> {
        Self::decode_traced(payload).map(|(response, _)| response)
    }

    /// [`WireResponse::decode`] that also yields the trace id the frame
    /// carried, if any.
    pub fn decode_traced(payload: &[u8]) -> Option<(Self, Option<u64>)> {
        let (opcode, mut at, trace_id) = open(payload)?;
        let get_bool = |at: &mut usize| match get_u8(payload, at)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        };
        let response = match opcode {
            RESP_ERROR => {
                let end = at.checked_add(2)?;
                let raw = u16::from_le_bytes(payload.get(at..end)?.try_into().ok()?);
                at = end;
                WireResponse::Error {
                    code: ErrorCode::decode(raw)?,
                    message: get_str(payload, &mut at)?,
                }
            }
            RESP_PONG => WireResponse::Pong,
            RESP_RESULT => WireResponse::Result(get_summary(payload, &mut at)?),
            RESP_APPROX => WireResponse::Approx(ApproxSummary {
                impact: get_f64(payload, &mut at)?,
                half_width: get_f64(payload, &mut at)?,
                samples: get_u64(payload, &mut at)?,
            }),
            RESP_INSERTED => WireResponse::Inserted {
                id: get_u64(payload, &mut at)?,
            },
            RESP_DELETED => WireResponse::Deleted {
                removed: get_bool(&mut at)?,
            },
            RESP_SUBSCRIBED => WireResponse::Subscribed {
                token: get_u64(payload, &mut at)?,
                initial: get_summary(payload, &mut at)?,
            },
            RESP_UNSUBSCRIBED => WireResponse::Unsubscribed {
                removed: get_bool(&mut at)?,
            },
            RESP_DELTAS => {
                let closed = get_bool(&mut at)?;
                let n = get_u32(payload, &mut at)? as usize;
                if n > payload.len().saturating_sub(at) {
                    return None;
                }
                let mut summaries = Vec::with_capacity(n);
                for _ in 0..n {
                    summaries.push(get_summary(payload, &mut at)?);
                }
                WireResponse::Deltas { summaries, closed }
            }
            RESP_COUNT => WireResponse::Count {
                value: get_u64(payload, &mut at)?,
            },
            RESP_STATS => WireResponse::Stats {
                fields: get_fields(payload, &mut at)?,
            },
            RESP_METRICS => {
                let counters = get_fields(payload, &mut at)?;
                let gauges = get_fields(payload, &mut at)?;
                let n = get_u32(payload, &mut at)? as usize;
                if n > payload.len().saturating_sub(at) {
                    return None;
                }
                let mut histograms = Vec::with_capacity(n);
                for _ in 0..n {
                    histograms.push(get_histogram_summary(payload, &mut at)?);
                }
                WireResponse::Metrics(MetricsReport {
                    counters,
                    gauges,
                    histograms,
                })
            }
            _ => return None,
        };
        finish((response, trace_id), at, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_request() -> Vec<WireRequest> {
        vec![
            WireRequest::Ping,
            WireRequest::Query {
                algorithm: Algorithm::LpCta,
                focal: vec![0.25, 0.5, 0.75],
                k: 4,
            },
            WireRequest::Tiered {
                algorithm: Algorithm::Cta,
                focal: vec![0.1, 0.9],
                k: 2,
                tier: TierSpec::Exact,
            },
            WireRequest::Tiered {
                algorithm: Algorithm::Pcta,
                focal: vec![0.3, 0.3],
                k: 1,
                tier: TierSpec::Approximate {
                    epsilon: 0.05,
                    confidence: 0.95,
                },
            },
            WireRequest::Tiered {
                algorithm: Algorithm::KSkyband,
                focal: vec![0.6],
                k: 7,
                tier: TierSpec::Auto {
                    epsilon: 0.02,
                    confidence: 0.9,
                    cost_threshold: 1e6,
                },
            },
            WireRequest::Insert {
                values: vec![0.2, 0.4, 0.6],
            },
            WireRequest::Delete { id: 42 },
            WireRequest::Subscribe {
                algorithm: Algorithm::LpCta,
                focal: vec![0.5, 0.5],
                k: 3,
            },
            WireRequest::Unsubscribe { token: 7 },
            WireRequest::PollDeltas { token: 7 },
            WireRequest::Subscriptions,
            WireRequest::Stats,
            WireRequest::Metrics,
        ]
    }

    fn every_response() -> Vec<WireResponse> {
        let summary = ResultSummary {
            num_regions: 3,
            whole_space: false,
            rank_signature: vec![1, 2, 2],
        };
        vec![
            WireResponse::Error {
                code: ErrorCode::Overloaded,
                message: "queue past hard limit".into(),
            },
            WireResponse::Pong,
            WireResponse::Result(summary.clone()),
            WireResponse::Approx(ApproxSummary {
                impact: 0.375,
                half_width: 0.05,
                samples: 738,
            }),
            WireResponse::Inserted { id: 9 },
            WireResponse::Deleted { removed: true },
            WireResponse::Subscribed {
                token: 3,
                initial: ResultSummary {
                    num_regions: 1,
                    whole_space: true,
                    rank_signature: vec![1],
                },
            },
            WireResponse::Unsubscribed { removed: false },
            WireResponse::Deltas {
                summaries: vec![summary.clone(), ResultSummary::default()],
                closed: true,
            },
            WireResponse::Count { value: 11 },
            WireResponse::Stats {
                fields: vec![("queries".into(), 100), ("degraded_to_approx".into(), 4)],
            },
            WireResponse::Metrics(MetricsReport {
                counters: vec![("kspr_wal_fsyncs".into(), 12)],
                gauges: vec![
                    ("kspr_wal_bytes".into(), 4096),
                    ("kspr_queue_depth".into(), 0),
                ],
                histograms: vec![
                    HistogramSummary {
                        name: "kspr_stage_engine_ns".into(),
                        count: 100,
                        sum: 123_456,
                        p50: 900,
                        p90: 2_100,
                        p99: 4_800,
                        max: 5_000,
                    },
                    HistogramSummary::default(),
                ],
            }),
        ]
    }

    #[test]
    fn every_request_round_trips() {
        for request in every_request() {
            let bytes = request.encode();
            assert_eq!(
                WireRequest::decode(&bytes),
                Some(request.clone()),
                "{request:?}"
            );
        }
    }

    #[test]
    fn every_response_round_trips() {
        for response in every_response() {
            let bytes = response.encode();
            assert_eq!(
                WireResponse::decode(&bytes),
                Some(response.clone()),
                "{response:?}"
            );
        }
    }

    #[test]
    fn truncation_never_decodes() {
        for request in every_request() {
            let bytes = request.encode();
            for cut in 0..bytes.len() {
                assert!(
                    WireRequest::decode(&bytes[..cut]).is_none(),
                    "{request:?} cut at {cut}"
                );
            }
        }
        for response in every_response() {
            let bytes = response.encode();
            for cut in 0..bytes.len() {
                assert!(
                    WireResponse::decode(&bytes[..cut]).is_none(),
                    "{response:?} cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_never_decode() {
        for request in every_request() {
            let mut bytes = request.encode();
            bytes.push(0);
            assert!(WireRequest::decode(&bytes).is_none(), "{request:?}");
        }
        for response in every_response() {
            let mut bytes = response.encode();
            bytes.push(0);
            assert!(WireResponse::decode(&bytes).is_none(), "{response:?}");
        }
    }

    #[test]
    fn unknown_versions_and_opcodes_are_rejected() {
        let mut bytes = WireRequest::Ping.encode();
        bytes[0] = WIRE_VERSION + 1;
        assert!(WireRequest::decode(&bytes).is_none());

        let bytes = vec![WIRE_VERSION, 200, 0];
        assert!(WireRequest::decode(&bytes).is_none());
        assert!(WireResponse::decode(&bytes).is_none());
    }

    #[test]
    fn trace_ids_round_trip() {
        for request in every_request() {
            let bytes = request.encode_traced(Some(0xDEAD_BEEF_u64));
            assert_eq!(
                WireRequest::decode_traced(&bytes),
                Some((request.clone(), Some(0xDEAD_BEEF_u64))),
                "{request:?}"
            );
            // Plain decode ignores (but tolerates) the trace id.
            assert_eq!(WireRequest::decode(&bytes), Some(request.clone()));
            // No id: encode_traced(None) is byte-identical to encode().
            assert_eq!(request.encode_traced(None), request.encode());
            assert_eq!(
                WireRequest::decode_traced(&request.encode()),
                Some((request.clone(), None))
            );
        }
        for response in every_response() {
            let bytes = response.encode_traced(Some(7));
            assert_eq!(
                WireResponse::decode_traced(&bytes),
                Some((response.clone(), Some(7))),
                "{response:?}"
            );
        }
    }

    #[test]
    fn legacy_frames_still_decode() {
        for request in every_request() {
            let bytes = request.encode_legacy();
            assert_eq!(bytes[0], LEGACY_WIRE_VERSION);
            assert_eq!(
                WireRequest::decode_traced(&bytes),
                Some((request.clone(), None)),
                "{request:?}"
            );
            for cut in 0..bytes.len() {
                assert!(
                    WireRequest::decode(&bytes[..cut]).is_none(),
                    "{request:?} cut at {cut}"
                );
            }
        }
        for response in every_response() {
            let bytes = response.encode_legacy();
            assert_eq!(
                WireResponse::decode_traced(&bytes),
                Some((response.clone(), None)),
                "{response:?}"
            );
        }
    }

    #[test]
    fn bad_trace_flags_and_truncated_ids_are_rejected() {
        let mut bytes = WireRequest::Ping.encode();
        bytes[2] = 2; // flags are 0 or 1
        assert!(WireRequest::decode(&bytes).is_none());

        let traced = WireRequest::Delete { id: 42 }.encode_traced(Some(9));
        for cut in 0..traced.len() {
            assert!(WireRequest::decode(&traced[..cut]).is_none(), "cut {cut}");
        }
        let mut trailing = traced;
        trailing.push(0);
        assert!(WireRequest::decode(&trailing).is_none());
    }

    #[test]
    fn tier_specs_validate_on_conversion() {
        assert_eq!(TierSpec::Exact.to_tier(), Some(QueryTier::Exact));
        assert!(TierSpec::Approximate {
            epsilon: 0.05,
            confidence: 0.95
        }
        .to_tier()
        .is_some());
        for (epsilon, confidence) in [(0.0, 0.95), (1.0, 0.95), (0.05, 0.0), (0.05, 1.5)] {
            assert_eq!(
                TierSpec::Approximate {
                    epsilon,
                    confidence
                }
                .to_tier(),
                None,
                "({epsilon}, {confidence})"
            );
        }
        assert_eq!(
            TierSpec::Auto {
                epsilon: 0.05,
                confidence: 0.95,
                cost_threshold: f64::NAN
            }
            .to_tier(),
            None
        );
        let round = TierSpec::from(QueryTier::auto(ErrorBudget::default()))
            .to_tier()
            .unwrap();
        assert_eq!(round, QueryTier::auto(ErrorBudget::default()));
    }

    #[test]
    fn client_round_trips_over_an_in_memory_stream() {
        use crate::{read_frame, write_frame};

        // A duplex pipe built from two cursors: the "server" reads the
        // request frame, answers, and the client decodes the response.
        let mut wire = Vec::new();
        write_frame(&mut wire, &WireRequest::Delete { id: 3 }.encode()).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let request = WireRequest::decode(&read_frame(&mut cursor).unwrap()).unwrap();
        assert_eq!(request, WireRequest::Delete { id: 3 });

        let mut reply = Vec::new();
        write_frame(
            &mut reply,
            &WireResponse::Deleted { removed: true }.encode(),
        )
        .unwrap();
        let mut cursor = std::io::Cursor::new(reply);
        let response = WireResponse::decode(&read_frame(&mut cursor).unwrap()).unwrap();
        assert_eq!(response, WireResponse::Deleted { removed: true });
    }
}
