//! Frame I/O and the field-level encoding primitives.
//!
//! All integers are little-endian.  Sequences are `u32`-counted.  Floats
//! travel as their IEEE-754 bit patterns, so values round-trip bit-exactly
//! (including negative zero; NaN payloads are preserved too, though the
//! serving stack rejects non-finite coordinates before they reach a codec).

use std::io::{Read, Write};

/// Hard upper bound on one frame, bytes.  Large enough for a batch of
/// high-dimensional rows, small enough that a corrupt or hostile length
/// prefix cannot trigger a multi-gigabyte allocation.
pub const MAX_FRAME: usize = 1 << 24;

/// Why a frame exchange failed.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (including EOF mid-frame).
    Io(std::io::Error),
    /// The peer announced a frame larger than [`MAX_FRAME`].
    Oversized(usize),
    /// The payload decoded to no valid message.
    Malformed,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(err) => write!(f, "wire stream failed: {err}"),
            FrameError::Oversized(len) => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::Malformed => write!(f, "malformed wire payload"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(err: std::io::Error) -> Self {
        FrameError::Io(err)
    }
}

/// Writes one length-prefixed frame.
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME {
        return Err(FrameError::Oversized(payload.len()));
    }
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame.
pub fn read_frame(stream: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    read_frame_body(stream, u32::from_le_bytes(len))
}

/// Reads a frame's payload when the 4-byte length prefix was already
/// consumed — the serve front-end sniffs those bytes to tell a framed
/// connection from a plaintext HTTP metrics scrape.
pub fn read_frame_body(stream: &mut impl Read, len: u32) -> Result<Vec<u8>, FrameError> {
    let len = len as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(payload)
}

// ---- field primitives (crate-internal; message.rs builds on these) ----

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_row(out: &mut Vec<u8>, row: &[f64]) {
    out.extend_from_slice(&(row.len() as u32).to_le_bytes());
    for &v in row {
        put_f64(out, v);
    }
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn get_u8(bytes: &[u8], at: &mut usize) -> Option<u8> {
    let v = *bytes.get(*at)?;
    *at += 1;
    Some(v)
}

pub(crate) fn get_u32(bytes: &[u8], at: &mut usize) -> Option<u32> {
    let end = at.checked_add(4)?;
    let v = u32::from_le_bytes(bytes.get(*at..end)?.try_into().ok()?);
    *at = end;
    Some(v)
}

pub(crate) fn get_u64(bytes: &[u8], at: &mut usize) -> Option<u64> {
    let end = at.checked_add(8)?;
    let v = u64::from_le_bytes(bytes.get(*at..end)?.try_into().ok()?);
    *at = end;
    Some(v)
}

pub(crate) fn get_f64(bytes: &[u8], at: &mut usize) -> Option<f64> {
    Some(f64::from_bits(get_u64(bytes, at)?))
}

pub(crate) fn get_row(bytes: &[u8], at: &mut usize) -> Option<Vec<f64>> {
    let n = get_u32(bytes, at)? as usize;
    // A row longer than the remaining payload is corrupt, not short.
    if n > bytes.len().saturating_sub(*at) / 8 {
        return None;
    }
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(get_f64(bytes, at)?);
    }
    Some(row)
}

pub(crate) fn get_str(bytes: &[u8], at: &mut usize) -> Option<String> {
    let n = get_u32(bytes, at)? as usize;
    let end = at.checked_add(n)?;
    let s = std::str::from_utf8(bytes.get(*at..end)?).ok()?.to_owned();
    *at = end;
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Io(_)) // clean EOF between frames
        ));
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Oversized(_))
        ));
    }

    #[test]
    fn truncated_payloads_fail_as_io() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&8u32.to_le_bytes());
        buf.extend_from_slice(b"abc"); // 3 of the promised 8 bytes
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Io(_))));
    }

    #[test]
    fn rows_round_trip_bit_exactly() {
        let row = vec![0.1, -0.0, f64::MIN_POSITIVE, 1e300];
        let mut out = Vec::new();
        put_row(&mut out, &row);
        let mut at = 0;
        let back = get_row(&out, &mut at).unwrap();
        assert_eq!(at, out.len());
        assert_eq!(row.len(), back.len());
        for (a, b) in row.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn implausible_row_counts_are_rejected() {
        let mut out = Vec::new();
        out.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut at = 0;
        assert!(get_row(&out, &mut at).is_none());
    }
}
