//! Benchmark harness for the kSPR reproduction.
//!
//! This crate hosts two things:
//!
//! * a small library of **workload builders** and **measurement helpers**
//!   shared by the Criterion benches (`benches/`) and the `experiments`
//!   binary, and
//! * the `experiments` binary itself, which regenerates every table and
//!   figure of the paper's evaluation (Section 7 and Appendices A–D) and
//!   prints the same rows / series the paper reports.
//!
//! ## Workload scaling
//!
//! The paper's default workload is 1 M records on an Intel i7 with a C++
//! implementation backed by `lp_solve` and `qhull`.  The reproduction runs
//! every experiment at a scaled-down default (documented per experiment in
//! `EXPERIMENTS.md`) chosen so the full suite completes in minutes while
//! preserving the comparisons the paper makes: which method wins, by roughly
//! what factor, and how the curves move with `k`, `n`, `d` and the data
//! distribution.
//!
//! ## Focal record selection
//!
//! The paper samples focal records uniformly from the dataset.  Under the
//! independent distribution most random records have far more than `k`
//! dominators, which makes their kSPR result empty after the Section 3.1
//! preprocessing; the paper's averages are therefore dominated by the few
//! "competitive" focal records.  To keep the scaled-down runs informative we
//! sample focal records from the `k`-skyband (records that can actually appear
//! in some top-`k`), which concentrates measurement on the non-trivial
//! queries.  This substitution is documented in `EXPERIMENTS.md`.

use kspr::{Algorithm, Dataset, KsprConfig, KsprResult, QueryEngine};
use kspr_datagen::Distribution;
use kspr_serve::ShardedEngine;
use kspr_spatial::{k_skyband, Record};
use std::time::{Duration, Instant};

/// A ready-to-run benchmark workload: an indexed dataset plus a pool of focal
/// records.
pub struct Workload {
    /// Display label (e.g. `IND`, `HOTEL`).
    pub label: String,
    /// Raw attribute vectors (used by oracles and result validation).
    pub raw: Vec<Vec<f64>>,
    /// The indexed dataset.
    pub dataset: Dataset,
    /// Candidate focal records (indices into `raw`).
    pub focal_pool: Vec<usize>,
}

impl Workload {
    /// Builds a workload from raw vectors.
    ///
    /// The focal pool contains "competitive but not unbeatable" records: they
    /// have between 1 and `k/2` dominators, so their kSPR result is usually
    /// non-empty (the query exercises the full algorithm) without being the
    /// near-total coverage a skyline record produces at large `k`.  This keeps
    /// the scaled-down run times representative; see `EXPERIMENTS.md`.
    pub fn from_raw(label: impl Into<String>, raw: Vec<Vec<f64>>, k: usize) -> Self {
        let records = Record::from_raw(raw.clone());
        let dominated_counts: Vec<usize> = {
            // Count dominators only among the k-skyband candidates; records
            // outside the k-skyband are never eligible anyway.
            let band = k_skyband(&records, k.max(2));
            let band_set: std::collections::HashSet<usize> = band.iter().copied().collect();
            records
                .iter()
                .map(|r| {
                    if !band_set.contains(&r.id) {
                        return usize::MAX;
                    }
                    records
                        .iter()
                        .filter(|o| kspr_spatial::dominates(&o.values, &r.values))
                        .count()
                })
                .collect()
        };
        let preferred: Vec<usize> = dominated_counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != usize::MAX && c >= 1 && c <= (k / 2).max(1))
            .map(|(i, _)| i)
            .collect();
        let fallback: Vec<usize> = dominated_counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != usize::MAX && c >= 1 && c < k)
            .map(|(i, _)| i)
            .collect();
        let mut focal_pool = if !preferred.is_empty() {
            preferred
        } else if !fallback.is_empty() {
            fallback
        } else {
            k_skyband(&records, k.max(2))
        };
        if focal_pool.is_empty() {
            focal_pool = (0..raw.len().min(16)).collect();
        }
        let dataset = Dataset::new(raw.clone());
        Self {
            label: label.into(),
            raw,
            dataset,
            focal_pool,
        }
    }

    /// Synthetic workload with one of the paper's standard distributions.
    pub fn synthetic(dist: Distribution, n: usize, d: usize, k: usize, seed: u64) -> Self {
        let raw = kspr_datagen::generate(dist, n, d, seed);
        Self::from_raw(dist.label(), raw, k)
    }

    /// HOTEL-like surrogate workload (4 attributes).
    pub fn hotel(n: usize, k: usize, seed: u64) -> Self {
        Self::from_raw("HOTEL", kspr_datagen::hotel_like(n, seed), k)
    }

    /// HOUSE-like surrogate workload (6 attributes).
    pub fn house(n: usize, k: usize, seed: u64) -> Self {
        Self::from_raw("HOUSE", kspr_datagen::house_like(n, seed), k)
    }

    /// NBA-like surrogate workload (8 attributes).
    pub fn nba(n: usize, k: usize, seed: u64) -> Self {
        Self::from_raw("NBA", kspr_datagen::nba_like(n, seed), k)
    }

    /// Picks `count` deeply dominated records — the "negative lookup" focal
    /// mix: their kSPR result is empty after the Section 3.1 preprocessing,
    /// which is the common case for uniformly drawn focal records (most
    /// options have at least `k` dominators).  Used by the `update`
    /// experiment as the steady-state serving mix.
    pub fn lookup_focals(&self, count: usize) -> Vec<Vec<f64>> {
        let mut by_sum: Vec<usize> = (0..self.raw.len()).collect();
        let sums: Vec<f64> = self.raw.iter().map(|r| r.iter().sum()).collect();
        by_sum.sort_by(|&a, &b| {
            sums[a]
                .partial_cmp(&sums[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        by_sum
            .into_iter()
            .take(count)
            .map(|i| self.raw[i].clone())
            .collect()
    }

    /// Picks `count` focal records, evenly spread over the focal pool.
    pub fn focals(&self, count: usize) -> Vec<Vec<f64>> {
        if self.focal_pool.is_empty() {
            return Vec::new();
        }
        let step = (self.focal_pool.len() / count.max(1)).max(1);
        self.focal_pool
            .iter()
            .step_by(step)
            .take(count)
            .map(|&i| self.raw[i].clone())
            .collect()
    }
}

/// Measurement of one algorithm over a set of focal records.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Algorithm that was run.
    pub algorithm: Algorithm,
    /// Average wall-clock time per query.
    pub avg_time: Duration,
    /// Average number of processed records (hyperplanes inserted).
    pub avg_processed: f64,
    /// Average number of CellTree nodes.
    pub avg_nodes: f64,
    /// Average number of result regions.
    pub avg_regions: f64,
    /// Average simulated I/O time in milliseconds (Appendix A).
    pub avg_io_ms: f64,
    /// Average number of LP feasibility tests.
    pub avg_feasibility_tests: f64,
    /// Average constraints per feasibility test.
    pub avg_constraints: f64,
    /// Number of queries measured.
    pub queries: usize,
}

/// Runs `algorithm` for every focal record (sequentially, through one shared
/// [`QueryEngine`]) and averages the results.
pub fn measure(
    algorithm: Algorithm,
    dataset: &Dataset,
    focals: &[Vec<f64>],
    k: usize,
    config: &KsprConfig,
) -> Measurement {
    let engine = QueryEngine::new(dataset, config.clone());
    let mut total_time = Duration::ZERO;
    let mut results = Vec::with_capacity(focals.len());
    for focal in focals {
        let start = Instant::now();
        let result = engine.run(algorithm, focal, k);
        total_time += start.elapsed();
        results.push(result);
    }
    summarize(algorithm, total_time, &results, focals.len())
}

/// Runs `algorithm` for every focal record through
/// [`QueryEngine::run_batch`] (parallel workers + shared preprocessing) and
/// averages the results.  `avg_time` is the *batch wall-clock divided by the
/// number of queries*, i.e. the effective per-query latency of batch mode.
pub fn measure_batch(
    algorithm: Algorithm,
    dataset: &Dataset,
    focals: &[Vec<f64>],
    k: usize,
    config: &KsprConfig,
) -> Measurement {
    let engine = QueryEngine::new(dataset, config.clone());
    let start = Instant::now();
    let results = engine.run_batch(algorithm, focals, k);
    let total_time = start.elapsed();
    summarize(algorithm, total_time, &results, focals.len())
}

fn summarize(
    algorithm: Algorithm,
    total_time: Duration,
    results: &[KsprResult],
    queries: usize,
) -> Measurement {
    let mut processed = 0usize;
    let mut nodes = 0usize;
    let mut regions = 0usize;
    let mut io_ms = 0.0f64;
    let mut tests = 0usize;
    let mut constraints = 0usize;
    for result in results {
        processed += result.stats.processed_records;
        nodes += result.stats.celltree_nodes;
        regions += result.num_regions();
        io_ms += result.stats.io_time_ms;
        tests += result.stats.feasibility_tests;
        constraints += result.stats.lp_constraints;
    }
    let q = queries.max(1);
    Measurement {
        algorithm,
        avg_time: total_time / q as u32,
        avg_processed: processed as f64 / q as f64,
        avg_nodes: nodes as f64 / q as f64,
        avg_regions: regions as f64 / q as f64,
        avg_io_ms: io_ms / q as f64,
        avg_feasibility_tests: tests as f64 / q as f64,
        avg_constraints: if tests == 0 {
            0.0
        } else {
            constraints as f64 / tests as f64
        },
        queries,
    }
}

/// Outcome of one dynamic-update comparison ([`measure_update_cycles`]).
#[derive(Debug, Clone, Copy)]
pub struct UpdateComparison {
    /// Average seconds per (single-record update + `run_batch`) cycle on the
    /// long-lived engine with incremental index / shared-prep maintenance.
    pub incremental: f64,
    /// Average seconds per cycle when every update instead rebuilds the
    /// dataset index and a fresh engine (whose first batch recomputes the
    /// shared preprocessing) from scratch.
    pub rebuild: f64,
}

impl UpdateComparison {
    /// How many times faster the incremental path is.
    pub fn speedup(&self) -> f64 {
        self.rebuild / self.incremental.max(1e-12)
    }
}

/// Measures `rounds` × (insert a record + `run_batch`, then delete it +
/// `run_batch`) through both maintenance strategies and reports the average
/// per-cycle cost of each.
///
/// Both strategies see the exact same update records and focal batches, so
/// the only difference is maintenance: incremental insert/delete + cached,
/// patched [`kspr::SharedPrep`] versus bulk reload + recompute.  The
/// incremental engine's prep-compute counter is asserted flat across all
/// cycles (zero steady-state recomputations).
///
/// # Panics
/// Panics if the incremental engine recomputes its shared prep after the
/// priming batch, or if the two strategies disagree on any query result
/// (region count, or the classification of sampled preference vectors).
pub fn measure_update_cycles(
    workload: &Workload,
    focals: &[Vec<f64>],
    k: usize,
    config: &KsprConfig,
    algorithm: Algorithm,
    rounds: usize,
    seed: u64,
) -> UpdateComparison {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let d = workload.dataset.dim();
    let mut rng = SmallRng::seed_from_u64(seed);
    let updates: Vec<Vec<f64>> = (0..rounds)
        .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();

    // Incremental: one long-lived engine, updates patch everything in place.
    let mut engine = QueryEngine::new(&workload.dataset, config.clone());
    engine.run_batch(algorithm, focals, k); // prime the shared-prep cache
    let primed = engine.shared_prep_computes();
    let mut incremental_results = Vec::new();
    let start = Instant::now();
    for record in &updates {
        let id = engine.insert(record.clone());
        incremental_results.push(engine.run_batch(algorithm, focals, k));
        engine.delete(id);
        incremental_results.push(engine.run_batch(algorithm, focals, k));
    }
    let incremental = start.elapsed().as_secs_f64() / (2 * rounds) as f64;
    assert_eq!(
        engine.shared_prep_computes(),
        primed,
        "updates must never trigger a shared-prep recomputation"
    );

    // Rebuild: every update constructs the dataset index and a fresh engine.
    let mut rebuild_results = Vec::new();
    let start = Instant::now();
    for record in &updates {
        let mut raw = workload.raw.clone();
        raw.push(record.clone());
        let fresh = QueryEngine::new(&Dataset::new(raw), config.clone());
        rebuild_results.push(fresh.run_batch(algorithm, focals, k));
        let fresh = QueryEngine::new(&Dataset::new(workload.raw.clone()), config.clone());
        rebuild_results.push(fresh.run_batch(algorithm, focals, k));
    }
    let rebuild = start.elapsed().as_secs_f64() / (2 * rounds) as f64;

    for (a, b) in incremental_results.iter().zip(&rebuild_results) {
        for (x, y) in a.iter().zip(b) {
            assert_eq!(
                x.num_regions(),
                y.num_regions(),
                "incremental and rebuilt engines disagree on region count"
            );
            // Geometry check: the regions must classify sampled preference
            // vectors identically, not just agree in number.
            for w in kspr::naive::sample_weights(&x.space, 16, seed ^ 0x5eed) {
                assert_eq!(
                    x.contains(&w),
                    y.contains(&w),
                    "incremental and rebuilt engines disagree at {w:?}"
                );
            }
        }
    }
    UpdateComparison {
        incremental,
        rebuild,
    }
}

/// Outcome of one sharded-serving comparison ([`measure_sharded_serving`]).
#[derive(Debug, Clone, Copy)]
pub struct ServeComparison {
    /// Seconds per batch on a single `QueryEngine` over the full dataset.
    pub single: f64,
    /// Seconds per batch through the sharded front-end.
    pub sharded: f64,
    /// Size of the merged candidate set the sharded engine queries (union of
    /// the per-shard k-skybands).
    pub candidates: usize,
    /// Number of live records (what the single engine queries).
    pub records: usize,
    /// Queries per batch.
    pub queries: usize,
}

impl ServeComparison {
    /// How many times more batches per second the sharded front-end serves.
    pub fn speedup(&self) -> f64 {
        self.single / self.sharded.max(1e-12)
    }
}

/// Measures steady-state batch serving — the same focal batch answered
/// `rounds` times — through a single [`QueryEngine`] and through a
/// [`ShardedEngine`] with `shards` shards, and reports the average per-batch
/// wall-clock of each.
///
/// Both sides run the identical query stream with warmed caches, so the only
/// difference is the serving architecture: the single engine re-runs every
/// query against all `n` records, while the sharded engine routes queries to
/// the merged union of the per-shard k-skybands (see `kspr-serve` for why
/// that merge is result-preserving).
///
/// # Panics
/// Panics if the two sides disagree on any query result (region count, or
/// the classification of sampled preference vectors).
pub fn measure_sharded_serving(
    workload: &Workload,
    focals: &[Vec<f64>],
    k: usize,
    config: &KsprConfig,
    algorithm: Algorithm,
    shards: usize,
    rounds: usize,
) -> ServeComparison {
    let single = QueryEngine::new(&workload.dataset, config.clone());
    let sharded = ShardedEngine::new(workload.raw.clone(), config.clone().with_shards(shards));

    // Warm both caches and check result equality once up front.
    let want = single.run_batch(algorithm, focals, k);
    let got = sharded.run_batch(algorithm, focals, k);
    for (a, b) in got.iter().zip(&want) {
        assert_eq!(
            a.num_regions(),
            b.num_regions(),
            "sharded and single-engine serving disagree on region count"
        );
        for w in kspr::naive::sample_weights(&a.space, 16, 0xC0FFEE) {
            assert_eq!(
                a.contains(&w),
                b.contains(&w),
                "sharded and single-engine serving disagree at {w:?}"
            );
        }
    }

    let start = Instant::now();
    for _ in 0..rounds {
        let _ = single.run_batch(algorithm, focals, k);
    }
    let single_secs = start.elapsed().as_secs_f64() / rounds.max(1) as f64;

    let start = Instant::now();
    for _ in 0..rounds {
        let _ = sharded.run_batch(algorithm, focals, k);
    }
    let sharded_secs = start.elapsed().as_secs_f64() / rounds.max(1) as f64;

    ServeComparison {
        single: single_secs,
        sharded: sharded_secs,
        candidates: sharded.merged_candidates(k),
        records: workload.dataset.len(),
        queries: focals.len(),
    }
}

/// Outcome of one standing-query maintenance comparison
/// ([`measure_monitor_refresh`]).
#[derive(Debug, Clone, Copy)]
pub struct MonitorComparison {
    /// Average seconds per update on the monitored engine: the update itself
    /// plus classification, in-place patches and selective re-runs.
    pub patched: f64,
    /// Average seconds per update when every standing query is naively
    /// re-run after every update (same long-lived incremental engine
    /// underneath, so the gap is purely refresh strategy).
    pub naive: f64,
    /// Number of standing queries maintained.
    pub queries: usize,
    /// Number of updates applied to each side.
    pub updates: usize,
    /// The monitor's classification counters.
    pub stats: kspr_monitor::MonitorStats,
}

impl MonitorComparison {
    /// How many times faster the monitor keeps the standing results fresh.
    pub fn speedup(&self) -> f64 {
        self.naive / self.patched.max(1e-12)
    }
}

/// Measures `rounds` × (insert a random record, then delete it) against a
/// set of standing queries through two refresh strategies and reports the
/// average per-update cost of each:
///
/// * **patched** — a [`kspr_monitor::MonitoredEngine`]: each update is
///   classified per standing query (unaffected / patched / rerun) and only
///   the must-rerun queries touch the engine;
/// * **naive** — the same incremental engine, but every standing query is
///   re-run after every update.
///
/// Each standing query is an `(algorithm, focal)` pair (standing registries
/// mix policies in practice: LP-CTA answers lookups fastest, while P-CTA's
/// schedule-invariant reporting lets the monitor classify witnessed updates
/// away even for region-rich results — see the `kspr-monitor` docs).  Both
/// sides apply the identical update stream, so the only difference is the
/// refresh strategy.  After every update the two sides' results are asserted
/// equal (region counts, rank signatures, sampled classification).
///
/// # Panics
/// Panics if the monitored and naively refreshed results ever diverge.
pub fn measure_monitor_refresh(
    workload: &Workload,
    queries: &[(Algorithm, Vec<f64>)],
    k: usize,
    config: &KsprConfig,
    rounds: usize,
    seed: u64,
) -> MonitorComparison {
    use kspr_monitor::MonitoredEngine;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let d = workload.dataset.dim();
    let mut rng = SmallRng::seed_from_u64(seed);
    let updates: Vec<Vec<f64>> = (0..rounds)
        .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();

    let mut monitored = MonitoredEngine::new(QueryEngine::new(&workload.dataset, config.clone()));
    let ids: Vec<kspr_monitor::QueryId> = queries
        .iter()
        .map(|(algorithm, focal)| {
            monitored
                .register(*algorithm, focal.clone(), k)
                .expect("valid standing query")
        })
        .collect();

    let mut naive_engine = QueryEngine::new(&workload.dataset, config.clone());
    let mut naive_results: Vec<KsprResult> = queries
        .iter()
        .map(|(algorithm, focal)| naive_engine.run(*algorithm, focal, k))
        .collect();

    let verify = |monitored: &MonitoredEngine, naive_results: &[KsprResult], ctx: &str| {
        for (id, naive) in ids.iter().zip(naive_results) {
            let maintained = monitored.result(*id).expect("registered");
            assert_eq!(
                maintained.num_regions(),
                naive.num_regions(),
                "monitored and naively refreshed results disagree {ctx}"
            );
            assert_eq!(
                maintained.rank_signature(),
                naive.rank_signature(),
                "monitored and naively refreshed ranks disagree {ctx}"
            );
            for w in kspr::naive::sample_weights(&naive.space, 16, seed ^ 0x5afe) {
                assert_eq!(
                    maintained.contains(&w),
                    naive.contains(&w),
                    "monitored and naively refreshed regions disagree {ctx} at {w:?}"
                );
            }
        }
    };
    let refresh_naive = |engine: &QueryEngine, naive_results: &mut [KsprResult]| {
        for (slot, (algorithm, focal)) in naive_results.iter_mut().zip(queries) {
            *slot = engine.run(*algorithm, focal, k);
        }
    };

    let mut patched_secs = 0.0f64;
    let mut naive_secs = 0.0f64;
    for record in &updates {
        // Insert, both sides, then verify (verification is untimed).
        let start = Instant::now();
        let (id, _) = monitored.insert(record.clone());
        patched_secs += start.elapsed().as_secs_f64();
        let start = Instant::now();
        let naive_id = naive_engine.insert(record.clone());
        refresh_naive(&naive_engine, &mut naive_results);
        naive_secs += start.elapsed().as_secs_f64();
        assert_eq!(id, naive_id, "both sides see the same id sequence");
        verify(&monitored, &naive_results, "after insert");

        // Delete it again, both sides, then verify.
        let start = Instant::now();
        let (removed, _) = monitored.delete(id);
        patched_secs += start.elapsed().as_secs_f64();
        assert!(removed);
        let start = Instant::now();
        naive_engine.delete(naive_id);
        refresh_naive(&naive_engine, &mut naive_results);
        naive_secs += start.elapsed().as_secs_f64();
        verify(&monitored, &naive_results, "after delete");
    }

    let updates_applied = 2 * rounds;
    MonitorComparison {
        patched: patched_secs / updates_applied.max(1) as f64,
        naive: naive_secs / updates_applied.max(1) as f64,
        queries: queries.len(),
        updates: updates_applied,
        stats: monitored.monitor().stats(),
    }
}

/// Outcome of one registry-scaling point ([`measure_registry_scaling`]): the
/// same mixed standing-query registry maintained through the indexed +
/// batched pipeline and through the legacy full scan.
#[derive(Debug, Clone, Copy)]
pub struct RegistryScalingPoint {
    /// Standing queries registered (the registry size).
    pub registered: usize,
    /// Updates applied to each side (inserts + deletes).
    pub updates: usize,
    /// Updates per maintenance batch on the indexed side.
    pub batch: usize,
    /// Average maintenance seconds per update on the indexed + batched side
    /// ([`kspr_monitor::Monitor::new`] + `apply_batch`).
    pub indexed: f64,
    /// Average maintenance seconds per update on the full-scan side
    /// ([`kspr_monitor::Monitor::full_scan`] + `apply_insert` /
    /// `apply_delete` after every single update — the pre-index monitor
    /// shape).
    pub full_scan: f64,
    /// Indexed-side classification counters.
    pub indexed_stats: kspr_monitor::MonitorStats,
    /// Full-scan-side classification counters.
    pub full_scan_stats: kspr_monitor::MonitorStats,
}

impl RegistryScalingPoint {
    /// How many times faster the indexed + batched registry keeps every
    /// standing result fresh.
    pub fn speedup(&self) -> f64 {
        self.full_scan / self.indexed.max(1e-12)
    }

    /// (update, query) pairs the indexed classifier actually walked, per
    /// update.  Flat in the registry size when the index prunes well.
    pub fn visited_per_update(&self) -> f64 {
        self.indexed_stats.visited as f64 / self.updates.max(1) as f64
    }

    /// (update, query) pairs the registry index proved unaffected in bulk,
    /// per update.  Grows linearly with the registry size.
    pub fn pruned_per_update(&self) -> f64 {
        self.indexed_stats.index_pruned as f64 / self.updates.max(1) as f64
    }
}

/// Measures standing-query maintenance at one registry size: `registered`
/// mixed standing queries (the four CellTree policies round-robin, `k`
/// cycling `1..=max_k`, focal records uniform over the bulk of the space —
/// the deeply dominated majority a subscription population is made of) are
/// registered into **two** registries over one shared engine:
///
/// * **indexed + batched** — [`kspr_monitor::Monitor::new`]: each update
///   burst is applied to the engine first, then maintained with a single
///   [`kspr_monitor::Monitor::apply_batch`] pass (the serving dispatcher's
///   drain-the-queue shape, sized by `config.monitor_batch_window`);
/// * **full scan** — [`kspr_monitor::Monitor::full_scan`]: classification
///   walks every registered query after every single update, interleaved
///   with the engine mutations exactly as the pre-index monitor ran.
///
/// The stream is `rounds` bursts of (insert, delete) pairs: mostly deep
/// records the witness cut retires for every query, with a shallower burst
/// every fourth round so dominator bookkeeping actually shifts on a slice of
/// the registry.  After every burst the two registries are asserted
/// bit-identical (region counts, rank signatures, dominator bookkeeping), so
/// the measured gap is purely classification strategy.
///
/// # Panics
/// Panics if the indexed and full-scan registries ever diverge.
pub fn measure_registry_scaling(
    workload: &Workload,
    registered: usize,
    max_k: usize,
    config: &KsprConfig,
    rounds: usize,
    seed: u64,
) -> RegistryScalingPoint {
    use kspr_monitor::{Monitor, UpdateKind};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let d = workload.dataset.dim();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut engine = QueryEngine::new(&workload.dataset, config.clone());

    let algorithms = [
        Algorithm::LpCta,
        Algorithm::Pcta,
        Algorithm::Cta,
        Algorithm::KSkyband,
    ];
    let mut indexed = Monitor::new();
    let mut full = Monitor::full_scan();
    for i in 0..registered {
        let algorithm = algorithms[i % algorithms.len()];
        let k = 1 + i % max_k.max(1);
        let focal: Vec<f64> = (0..d).map(|_| rng.gen_range(0.05..0.70)).collect();
        let a = indexed
            .register(&engine, algorithm, focal.clone(), k)
            .expect("valid standing query");
        let b = full
            .register(&engine, algorithm, focal, k)
            .expect("valid standing query");
        assert_eq!(a, b, "both registries assign the same id sequence");
    }

    let window = config.monitor_batch_window.max(1);
    // Each (insert, delete) pair is two updates, so a burst of
    // `window / 2` records fills one maintenance batch.
    let per_burst = (window / 2).max(1);
    let mut indexed_secs = 0.0f64;
    let mut full_secs = 0.0f64;
    let mut updates_applied = 0usize;
    for burst in 0..rounds {
        let records: Vec<Vec<f64>> = (0..per_burst)
            .map(|_| {
                let range = if burst % 4 == 3 {
                    0.10..0.25
                } else {
                    0.00..0.15
                };
                (0..d).map(|_| rng.gen_range(range.clone())).collect()
            })
            .collect();
        // The full-scan side classifies after every single engine mutation
        // (its contract); the indexed side sees the whole burst as one batch
        // against the post-burst state (the batch classification argument —
        // see the kspr-monitor docs — makes that sound).
        let mut batch: Vec<(UpdateKind, Vec<f64>)> = Vec::with_capacity(2 * per_burst);
        let mut ids = Vec::with_capacity(per_burst);
        for record in &records {
            ids.push(engine.insert(record.clone()));
            let start = Instant::now();
            let _ = full.apply_insert(&engine, record);
            full_secs += start.elapsed().as_secs_f64();
            batch.push((UpdateKind::Insert, record.clone()));
        }
        for (id, record) in ids.iter().zip(&records) {
            engine.delete(*id);
            let start = Instant::now();
            let _ = full.apply_delete(&engine, record);
            full_secs += start.elapsed().as_secs_f64();
            batch.push((UpdateKind::Delete, record.clone()));
        }
        updates_applied += batch.len();
        let start = Instant::now();
        let _ = indexed.apply_batch(&engine, &batch);
        indexed_secs += start.elapsed().as_secs_f64();

        // Differential check: the registries must be bit-identical.
        for (id, q) in indexed.queries() {
            let f = full.query(id).expect("registered on both sides");
            assert_eq!(
                q.result().num_regions(),
                f.result().num_regions(),
                "indexed and full-scan registries disagree after burst {burst} (query {id})"
            );
            assert_eq!(
                q.result().rank_signature(),
                f.result().rank_signature(),
                "indexed and full-scan ranks disagree after burst {burst} (query {id})"
            );
            assert_eq!(
                q.focal_dominators(),
                f.focal_dominators(),
                "indexed and full-scan bookkeeping disagrees after burst {burst} (query {id})"
            );
        }
    }

    RegistryScalingPoint {
        registered,
        updates: updates_applied,
        batch: 2 * per_burst,
        indexed: indexed_secs / updates_applied.max(1) as f64,
        full_scan: full_secs / updates_applied.max(1) as f64,
        indexed_stats: indexed.stats(),
        full_scan_stats: full.stats(),
    }
}

/// Outcome of one exact-vs-approximate tier comparison
/// ([`measure_approx_frontier`]).
#[derive(Debug, Clone, Copy)]
pub struct ApproxComparison {
    /// Seconds per batch on the exact engine (LP-CTA, warmed caches).
    pub exact: f64,
    /// Seconds per batch through the approximate tier (sampler construction
    /// included — that is the real serving cost of an estimate).
    pub approx: f64,
    /// Samples the budget required per estimate.
    pub samples: usize,
    /// Candidate records each sample probes (the dataset-level k-skyband).
    pub candidates: usize,
    /// Largest `|estimate − exact impact|` across the batch.
    pub max_error: f64,
    /// Mean absolute error across the batch.
    pub mean_error: f64,
    /// Queries per batch.
    pub queries: usize,
}

impl ApproxComparison {
    /// How many times faster the approximate tier answers the batch.
    pub fn speedup(&self) -> f64 {
        self.exact / self.approx.max(1e-12)
    }
}

/// Measures the same focal batch answered by the exact engine and by the
/// approximate tier (`kspr-approx`) at the given error budget, and reports
/// per-batch wall-clock plus the observed estimation error against the
/// exact result's region volumes — one point of the speed/quality frontier.
///
/// Both sides run with warmed caches (the exact engine's shared prep doubles
/// as the sampler's candidate band, so the comparison isolates query-time
/// work).  The observed `max_error` is checked against the budget's
/// `epsilon` only by the caller — a Hoeffding interval is allowed to miss
/// with probability `1 − confidence`, so hard assertions belong in the
/// statistical consistency suite (`approx_consistency.rs`), not here.
pub fn measure_approx_frontier(
    workload: &Workload,
    focals: &[Vec<f64>],
    k: usize,
    config: &KsprConfig,
    budget: &kspr::ErrorBudget,
    rounds: usize,
    seed: u64,
) -> ApproxComparison {
    use kspr_approx::ApproxEngine;
    let engine = QueryEngine::new(&workload.dataset, config.clone());

    // Warm both caches and take the exact reference impacts (region volumes;
    // exact areas in 2 working dimensions, Monte-Carlo volumes above).
    let exact_results = engine.run_batch(Algorithm::LpCta, focals, k);
    let truths: Vec<f64> = exact_results
        .iter()
        .map(|r| r.impact(8_000, seed ^ 0xFACE))
        .collect();
    let sampler = ApproxEngine::from_engine(&engine, k);
    let estimates = sampler.estimate_batch(focals, budget, seed);

    let start = Instant::now();
    for _ in 0..rounds {
        let _ = engine.run_batch(Algorithm::LpCta, focals, k);
    }
    let exact_secs = start.elapsed().as_secs_f64() / rounds.max(1) as f64;

    let start = Instant::now();
    for round in 0..rounds {
        let per_round = ApproxEngine::from_engine(&engine, k);
        let _ = per_round.estimate_batch(focals, budget, seed.wrapping_add(round as u64));
    }
    let approx_secs = start.elapsed().as_secs_f64() / rounds.max(1) as f64;

    let errors: Vec<f64> = estimates
        .iter()
        .zip(&truths)
        .map(|(est, truth)| (est.impact - truth).abs())
        .collect();
    ApproxComparison {
        exact: exact_secs,
        approx: approx_secs,
        samples: budget.samples(),
        candidates: sampler.num_candidates(),
        max_error: errors.iter().copied().fold(0.0, f64::max),
        mean_error: errors.iter().sum::<f64>() / errors.len().max(1) as f64,
        queries: focals.len(),
    }
}

/// One worker count's measurement in an intra-query parallel scaling sweep
/// ([`measure_parallel_scaling`]).
#[derive(Debug, Clone, Copy)]
pub struct ParallelPoint {
    /// Intra-query workers granted per query
    /// ([`KsprConfig::intra_query_threads`]).
    pub workers: usize,
    /// Average wall-clock seconds per query, queries answered one at a time
    /// through [`QueryEngine::run`] — the single-query latency the workers
    /// exist to cut.
    pub single_query_secs: f64,
    /// Queries per second through [`QueryEngine::run_batch`] (the whole
    /// focal set per call).
    pub batch_qps: f64,
    /// Parallel CellTree insertions observed across the warm-up runs
    /// (0 means every insertion took the sequential path — the tree stayed
    /// under the parallel threshold or `workers == 1`).
    pub parallel_inserts: usize,
}

/// Outcome of one intra-query parallel scaling sweep
/// ([`measure_parallel_scaling`]): one [`ParallelPoint`] per worker count.
#[derive(Debug, Clone)]
pub struct ParallelScaling {
    /// Algorithm that was swept.
    pub algorithm: Algorithm,
    /// Queries per measurement point.
    pub queries: usize,
    /// One measurement per requested worker count, in input order.
    pub points: Vec<ParallelPoint>,
}

impl ParallelScaling {
    /// Single-query latency speedup of the `workers` point relative to the
    /// 1-worker point (0.0 if either point was not measured).
    pub fn speedup_at(&self, workers: usize) -> f64 {
        let base = self.points.iter().find(|p| p.workers == 1);
        let at = self.points.iter().find(|p| p.workers == workers);
        match (base, at) {
            (Some(b), Some(a)) => b.single_query_secs / a.single_query_secs.max(1e-12),
            _ => 0.0,
        }
    }
}

/// Measures the same focal set at every worker count in `worker_counts`:
/// single-query latency (queries answered one at a time) and batch
/// throughput (`run_batch` over the whole set), each averaged over `rounds`
/// timed repetitions on a warmed engine.
///
/// Parallel expansion is specified to be **bit-identical** to sequential
/// expansion (the work-stealing pool only reorders the read-only classify
/// phase; the apply phase replays decisions in the sequential DFS order), so
/// every worker count's results are asserted equal to the first count's —
/// region counts, rank signatures and the work-visible stats, excluding only
/// the `parallel_inserts` scheduling counter.
///
/// # Panics
/// Panics if any worker count changes any query's result or stats.
pub fn measure_parallel_scaling(
    workload: &Workload,
    focals: &[Vec<f64>],
    k: usize,
    config: &KsprConfig,
    algorithm: Algorithm,
    worker_counts: &[usize],
    rounds: usize,
) -> ParallelScaling {
    let mut reference: Option<Vec<KsprResult>> = None;
    let mut points = Vec::new();
    for &workers in worker_counts {
        let engine = QueryEngine::new(
            &workload.dataset,
            config.clone().with_intra_query_threads(workers.max(1)),
        );
        // Warm the shared prep and verify against the first worker count.
        let warm: Vec<KsprResult> = focals.iter().map(|f| engine.run(algorithm, f, k)).collect();
        let parallel_inserts: usize = warm.iter().map(|r| r.stats.parallel_inserts).sum();
        match &reference {
            None => reference = Some(warm),
            Some(want) => {
                for (got, want) in warm.iter().zip(want) {
                    assert_eq!(
                        got.num_regions(),
                        want.num_regions(),
                        "worker count {workers} changed a region count"
                    );
                    assert_eq!(
                        got.rank_signature(),
                        want.rank_signature(),
                        "worker count {workers} changed a rank signature"
                    );
                    let mut a = got.stats.clone();
                    let mut b = want.stats.clone();
                    a.parallel_inserts = 0;
                    b.parallel_inserts = 0;
                    a.wall_time_ns = 0;
                    b.wall_time_ns = 0;
                    assert_eq!(
                        a, b,
                        "worker count {workers} changed the stats-visible work"
                    );
                }
            }
        }

        let start = Instant::now();
        for _ in 0..rounds.max(1) {
            for focal in focals {
                let _ = engine.run(algorithm, focal, k);
            }
        }
        let timed = (rounds.max(1) * focals.len()).max(1);
        let single_query_secs = start.elapsed().as_secs_f64() / timed as f64;

        let start = Instant::now();
        for _ in 0..rounds.max(1) {
            let _ = engine.run_batch(algorithm, focals, k);
        }
        let batch_qps = timed as f64 / start.elapsed().as_secs_f64().max(1e-12);

        points.push(ParallelPoint {
            workers: workers.max(1),
            single_query_secs,
            batch_qps,
            parallel_inserts,
        });
    }
    ParallelScaling {
        algorithm,
        queries: focals.len(),
        points,
    }
}

/// Runs one query and returns the result together with its wall-clock time.
pub fn timed_query(
    algorithm: Algorithm,
    dataset: &Dataset,
    focal: &[f64],
    k: usize,
    config: &KsprConfig,
) -> (Duration, KsprResult) {
    let start = Instant::now();
    let result = kspr::run(algorithm, dataset, focal, k, config);
    (start.elapsed(), result)
}

/// Pretty-prints a duration in seconds with millisecond resolution.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Experiment scale, selectable from the command line of the `experiments`
/// binary: `quick` for CI-sized runs, `full` for the paper-shaped sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small parameters: every experiment finishes in seconds.
    Quick,
    /// The scaled-down defaults documented in `EXPERIMENTS.md`.
    Full,
}

impl Scale {
    /// Parses `"quick"` / `"full"` (anything else defaults to quick).
    pub fn parse(s: &str) -> Scale {
        match s {
            "full" => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Default dataset cardinality for this scale.
    pub fn default_n(&self) -> usize {
        match self {
            Scale::Quick => 2_000,
            Scale::Full => 20_000,
        }
    }

    /// Default number of focal records (queries) per measurement point.
    pub fn queries(&self) -> usize {
        match self {
            Scale::Quick => 3,
            Scale::Full => 10,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_focal_pool_is_nontrivial() {
        let w = Workload::synthetic(Distribution::Independent, 500, 3, 10, 1);
        assert!(!w.focal_pool.is_empty());
        assert_eq!(w.raw.len(), 500);
        assert_eq!(w.focals(5).len().min(5), w.focals(5).len());
        assert!(!w.focals(5).is_empty());
    }

    #[test]
    fn measure_reports_averages() {
        let w = Workload::synthetic(Distribution::Independent, 300, 3, 5, 2);
        let focals = w.focals(2);
        let m = measure(
            Algorithm::LpCta,
            &w.dataset,
            &focals,
            5,
            &KsprConfig::default(),
        );
        assert_eq!(m.queries, focals.len());
        assert!(m.avg_time > Duration::ZERO);
    }

    #[test]
    fn measure_batch_agrees_with_sequential_measure() {
        let w = Workload::synthetic(Distribution::Independent, 300, 3, 5, 2);
        let focals = w.focals(3);
        let config = KsprConfig::default();
        let seq = measure(Algorithm::LpCta, &w.dataset, &focals, 5, &config);
        let batch = measure_batch(Algorithm::LpCta, &w.dataset, &focals, 5, &config);
        assert_eq!(seq.queries, batch.queries);
        assert_eq!(seq.avg_regions, batch.avg_regions);
        assert_eq!(seq.avg_processed, batch.avg_processed);
        assert_eq!(seq.avg_nodes, batch.avg_nodes);
    }

    #[test]
    fn incremental_update_cycle_beats_rebuild() {
        // The acceptance bar for the dynamic engine: a single-record update +
        // re-query must beat rebuild + re-query by >= 2x.  On the lookup mix
        // the expected gap is an order of magnitude (maintenance is far below
        // the O(n log n) reload + O(n k) band recomputation), so the 2x bar
        // only fails under severe scheduler noise — measurement is retried a
        // couple of times and the best ratio taken to keep the suite
        // flake-free.  `measure_update_cycles` additionally asserts result
        // equality and zero steady-state prep recomputations on every try.
        let k = 10;
        let w = Workload::synthetic(Distribution::Independent, 4_000, 4, k, 51);
        let focals = w.lookup_focals(4);
        let mut best: Option<UpdateComparison> = None;
        for attempt in 0..3 {
            let cmp = measure_update_cycles(
                &w,
                &focals,
                k,
                &KsprConfig::default(),
                Algorithm::LpCta,
                2,
                52 + attempt,
            );
            if best.map_or(true, |b| cmp.speedup() > b.speedup()) {
                best = Some(cmp);
            }
            if best.expect("just set").speedup() >= 2.0 {
                break;
            }
        }
        let best = best.expect("at least one measurement ran");
        assert!(
            best.speedup() >= 2.0,
            "incremental update cycle must be >= 2x faster than rebuild, got {:.2}x \
             (incremental {:.4}s, rebuild {:.4}s)",
            best.speedup(),
            best.incremental,
            best.rebuild
        );
    }

    #[test]
    fn sharded_serving_beats_single_engine_at_4_shards() {
        // The acceptance bar for the serving layer: on the steady-state batch
        // workload (deeply dominated focal records — the common case for
        // uniformly drawn focals), the 4-shard front-end must serve batches
        // >= 1.5x faster than a single engine over the full dataset.  The
        // mechanism is architectural, not parallelism: every query runs
        // against the merged union of the per-shard k-skybands (~hundreds of
        // candidates) instead of re-filtering all n records, so the bar holds
        // on a single core.  Expected gap at this scale is 3-5x; the 1.5x bar
        // only fails under severe scheduler noise, so measurement is retried
        // a couple of times and the best ratio taken to keep the suite
        // flake-free.  `measure_sharded_serving` additionally asserts result
        // equality between the two sides on every try.
        let k = 10;
        let w = Workload::synthetic(Distribution::Independent, 4_000, 4, k, 77);
        let focals = w.lookup_focals(16);
        let mut best: Option<ServeComparison> = None;
        for _ in 0..3 {
            let cmp = measure_sharded_serving(
                &w,
                &focals,
                k,
                &KsprConfig::default(),
                Algorithm::LpCta,
                4,
                20,
            );
            if best.map_or(true, |b| cmp.speedup() > b.speedup()) {
                best = Some(cmp);
            }
            if best.expect("just set").speedup() >= 1.5 {
                break;
            }
        }
        let best = best.expect("at least one measurement ran");
        assert!(
            best.speedup() >= 1.5,
            "sharded serving must be >= 1.5x faster than a single engine at 4 shards, \
             got {:.2}x (single {:.5}s, sharded {:.5}s, {} candidates vs {} records)",
            best.speedup(),
            best.single,
            best.sharded,
            best.candidates,
            best.records
        );
    }

    #[test]
    fn monitor_patching_beats_naive_rerun() {
        // The acceptance bar for the standing-query monitor: on the mixed
        // standing-query set at n = 4k (mostly deeply dominated "lookup"
        // focals — the common case for uniformly drawn focal records — plus
        // a couple of competitive ones registered under the
        // schedule-invariant P-CTA policy), keeping every standing result
        // fresh through classification + patching must be >= 2x faster per
        // update than naively re-running every standing query.  The
        // mechanism: a random update record at this density almost always
        // has >= k live dominators, so the classifier retires it with
        // O(queries) dominance tests plus one shared MBR-pruned dominator
        // probe, while the naive side pays a full O(n) preprocessing pass
        // per standing query (plus full traversals for the competitive
        // ones).  The expected gap is an order of magnitude; the 2x bar only
        // fails under severe scheduler noise, so measurement is retried a
        // couple of times and the best ratio taken to keep the suite
        // flake-free.  `measure_monitor_refresh` additionally asserts result
        // equality between the two sides after every update on every try.
        let k = 10;
        let w = Workload::synthetic(Distribution::Independent, 4_000, 4, k, 91);
        let mut queries: Vec<(Algorithm, Vec<f64>)> = w
            .lookup_focals(12)
            .into_iter()
            .map(|f| (Algorithm::LpCta, f))
            .collect();
        queries.extend(w.focals(2).into_iter().map(|f| (Algorithm::Pcta, f)));
        let mut best: Option<MonitorComparison> = None;
        for attempt in 0..3 {
            let cmp =
                measure_monitor_refresh(&w, &queries, k, &KsprConfig::default(), 3, 92 + attempt);
            assert_eq!(cmp.queries, queries.len());
            assert_eq!(cmp.updates, 6);
            assert!(
                cmp.stats.unaffected > 0,
                "deeply dominated updates must classify away: {:?}",
                cmp.stats
            );
            if best.map_or(true, |b| cmp.speedup() > b.speedup()) {
                best = Some(cmp);
            }
            if best.expect("just set").speedup() >= 2.0 {
                break;
            }
        }
        let best = best.expect("at least one measurement ran");
        assert!(
            best.speedup() >= 2.0,
            "standing-query patching must be >= 2x faster than naive re-runs, got {:.2}x \
             (patched {:.6}s/update, naive {:.6}s/update, {:?})",
            best.speedup(),
            best.patched,
            best.naive,
            best.stats
        );
    }

    #[test]
    fn registry_index_and_batching_beat_full_scan_at_10k_subscriptions() {
        // The acceptance bar for the subscription-scale registry: at 10^4
        // mixed standing queries (four CellTree policies, k in 1..=8), the
        // spatially indexed registry maintained in dispatcher-sized batches
        // must keep every result fresh >= 10x faster per update than the
        // pre-index full scan.  The mechanism: the index resolves each
        // update's visit set (dominated focals + failed witness cuts) from
        // the focal R-tree and the k-grouped id map, so the per-update walk
        // is near-constant while the full scan pays O(registry) dominance
        // tests per update.  The expected gap at 10^4 is two orders of
        // magnitude; the 10x bar only fails under severe scheduler noise, so
        // measurement is retried a couple of times and the best ratio taken.
        // `measure_registry_scaling` additionally asserts the two registries
        // bit-identical after every burst, and the counters below pin the
        // sublinear visit set (the seed makes them deterministic).
        let k = 8;
        let registered = 10_000;
        let w = Workload::synthetic(Distribution::Independent, 2_000, 4, k, 71);
        let mut best: Option<RegistryScalingPoint> = None;
        for attempt in 0..3 {
            let cmp = measure_registry_scaling(
                &w,
                registered,
                k,
                &KsprConfig::default(),
                12,
                96 + attempt,
            );
            assert_eq!(cmp.registered, registered);
            let pairs = (registered * cmp.updates) as u64;
            assert_eq!(
                cmp.full_scan_stats.visited, pairs,
                "the full scan walks every (update, query) pair"
            );
            assert_eq!(
                cmp.indexed_stats.visited + cmp.indexed_stats.index_pruned,
                pairs,
                "every pair is either walked or index-pruned"
            );
            assert_eq!(
                cmp.indexed_stats.classified(),
                cmp.full_scan_stats.classified(),
                "both sides classify the same pair count"
            );
            assert!(
                cmp.indexed_stats.visited <= pairs / 20,
                "the registry index must prune >= 95% of pairs at 10^4 \
                 subscriptions, visited {} of {}",
                cmp.indexed_stats.visited,
                pairs
            );
            assert!(
                cmp.indexed_stats.batches >= 1
                    && cmp.indexed_stats.batched_updates == cmp.updates as u64,
                "the indexed side maintains in batches: {:?}",
                cmp.indexed_stats
            );
            if best.map_or(true, |b| cmp.speedup() > b.speedup()) {
                best = Some(cmp);
            }
            if best.expect("just set").speedup() >= 10.0 {
                break;
            }
        }
        let best = best.expect("at least one measurement ran");
        assert!(
            best.speedup() >= 10.0,
            "the indexed + batched registry must be >= 10x faster than the \
             full scan at 10^4 subscriptions, got {:.2}x (indexed {:.8}s/update, \
             full scan {:.8}s/update, visited {:.1}/update, pruned {:.1}/update)",
            best.speedup(),
            best.indexed,
            best.full_scan,
            best.visited_per_update(),
            best.pruned_per_update()
        );
    }

    #[test]
    fn approximate_tier_beats_exact_on_the_competitive_mix() {
        // The acceptance bar for the approximate tier: on the
        // arrangement-bound competitive mix (skyband-adjacent focal records,
        // the queries where the exact engine's CellTree work dominates), an
        // error budget of epsilon <= 0.05 must answer batches >= 5x faster
        // than exact LP-CTA.  The mechanism: the sampler's cost is
        // O(samples · band) and independent of the arrangement, while the
        // exact side pays for the full region decomposition.  The expected
        // gap at this scale is well over an order of magnitude; the 5x bar
        // only fails under severe scheduler noise, so measurement is retried
        // a couple of times and the best ratio taken to keep the suite
        // flake-free.
        let k = 18;
        let w = Workload::synthetic(Distribution::Independent, 3_000, 4, k, 83);
        let focals = w.focals(2);
        let budget = kspr::ErrorBudget::new(0.05, 0.95);
        let mut best: Option<ApproxComparison> = None;
        for attempt in 0..3 {
            let cmp = measure_approx_frontier(
                &w,
                &focals,
                k,
                &KsprConfig::default(),
                &budget,
                1,
                84 + attempt,
            );
            assert_eq!(cmp.queries, focals.len());
            assert_eq!(cmp.samples, budget.samples());
            if best.map_or(true, |b| cmp.speedup() > b.speedup()) {
                best = Some(cmp);
            }
            if best.expect("just set").speedup() >= 5.0 {
                break;
            }
        }
        let best = best.expect("at least one measurement ran");
        assert!(
            best.speedup() >= 5.0,
            "the approximate tier must be >= 5x faster than exact LP-CTA on \
             the competitive mix at eps <= 0.05, got {:.2}x (exact {:.4}s, \
             approx {:.4}s, {} samples x {} candidates)",
            best.speedup(),
            best.exact,
            best.approx,
            best.samples,
            best.candidates
        );
        // Quality sanity: the observed error should sit well inside the
        // budget (the reference impacts are themselves Monte-Carlo volumes
        // in 3 working dimensions, so allow their noise on top).
        assert!(
            best.max_error <= budget.epsilon + 0.03,
            "estimate error {:.4} far outside the {:.2} budget",
            best.max_error,
            budget.epsilon
        );
    }

    #[test]
    fn parallel_scaling_sweep_is_identical_at_every_worker_count() {
        // Runs on any machine (thread pools oversubscribe a single core
        // gracefully): the sweep's internal assertions verify bit-identical
        // results and stats at 1, 2 and 4 workers, and the telemetry shows
        // the multi-worker engines actually took the parallel path.  The
        // workload must build trees whose *resident* node count crosses the
        // engine's parallel threshold — P-CTA's subtree reclamation keeps
        // small-k trees below it no matter how many nodes they create — so
        // it uses d = 4, where elimination bites later.
        let k = 10;
        let w = Workload::synthetic(Distribution::Independent, 1_500, 4, k, 66);
        let focals = w.focals(2);
        let sweep = measure_parallel_scaling(
            &w,
            &focals,
            k,
            &KsprConfig::default(),
            Algorithm::Pcta,
            &[1, 2, 4],
            1,
        );
        assert_eq!(sweep.points.len(), 3);
        assert_eq!(
            sweep.points[0].parallel_inserts, 0,
            "1 worker never takes the parallel path"
        );
        assert!(
            sweep.points[1].parallel_inserts > 0 && sweep.points[2].parallel_inserts > 0,
            "multi-worker engines must engage the parallel insertion path: {:?}",
            sweep.points
        );
        assert!(sweep.points.iter().all(|p| p.batch_qps > 0.0));
        assert!(sweep.speedup_at(4) > 0.0);
    }

    #[test]
    fn intra_query_parallelism_halves_single_query_latency_at_4_workers() {
        // The acceptance bar for intra-query parallelism: on the
        // arrangement-bound competitive mix (skyband-adjacent focal records,
        // where CellTree expansion dominates the query), 4 intra-query
        // workers must answer single queries >= 2x faster than 1 worker.
        // The mechanism: the classify phase of every insertion — the LP
        // feasibility tests that dominate expansion cost — fans out over the
        // work-stealing pool, while the cheap apply phase replays the
        // decisions sequentially, so the speedup approaches the worker count
        // on LP-bound queries.  The bar needs real cores, so the test skips
        // itself on smaller machines; like the other perf bars it is retried
        // a couple of times and the best ratio taken to keep the suite
        // flake-free.  `measure_parallel_scaling` additionally asserts
        // bit-identical results and stats across worker counts on every try.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores < 4 {
            eprintln!(
                "skipping intra_query_parallelism_halves_single_query_latency_at_4_workers: \
                 {cores} core(s) < 4 — the speedup bar needs real parallelism"
            );
            return;
        }
        let k = 16;
        let w = Workload::synthetic(Distribution::Independent, 3_000, 4, k, 63);
        let focals = w.focals(2);
        let mut best: Option<ParallelScaling> = None;
        for _ in 0..3 {
            let sweep = measure_parallel_scaling(
                &w,
                &focals,
                k,
                &KsprConfig::default(),
                Algorithm::Pcta,
                &[1, 4],
                2,
            );
            let p4 = sweep
                .points
                .iter()
                .find(|p| p.workers == 4)
                .expect("the 4-worker point was measured");
            assert!(
                p4.parallel_inserts > 0,
                "the 4-worker engine must engage the parallel insertion path"
            );
            if best
                .as_ref()
                .map_or(true, |b| sweep.speedup_at(4) > b.speedup_at(4))
            {
                best = Some(sweep);
            }
            if best.as_ref().expect("just set").speedup_at(4) >= 2.0 {
                break;
            }
        }
        let best = best.expect("at least one measurement ran");
        assert!(
            best.speedup_at(4) >= 2.0,
            "4 intra-query workers must answer single queries >= 2x faster than 1, \
             got {:.2}x ({:?})",
            best.speedup_at(4),
            best.points
        );
    }

    #[test]
    fn lookup_focals_are_deeply_dominated() {
        let w = Workload::synthetic(Distribution::Independent, 800, 3, 5, 3);
        for focal in w.lookup_focals(4) {
            let dominators = w
                .raw
                .iter()
                .filter(|r| kspr_spatial::dominates(r, &focal))
                .count();
            assert!(dominators >= 5, "lookup focal must have >= k dominators");
        }
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("full"), Scale::Full);
        assert_eq!(Scale::parse("quick"), Scale::Quick);
        assert_eq!(Scale::parse("garbage"), Scale::Quick);
        assert!(Scale::Full.default_n() > Scale::Quick.default_n());
    }
}
