//! Benchmark harness for the kSPR reproduction.
//!
//! This crate hosts two things:
//!
//! * a small library of **workload builders** and **measurement helpers**
//!   shared by the Criterion benches (`benches/`) and the `experiments`
//!   binary, and
//! * the `experiments` binary itself, which regenerates every table and
//!   figure of the paper's evaluation (Section 7 and Appendices A–D) and
//!   prints the same rows / series the paper reports.
//!
//! ## Workload scaling
//!
//! The paper's default workload is 1 M records on an Intel i7 with a C++
//! implementation backed by `lp_solve` and `qhull`.  The reproduction runs
//! every experiment at a scaled-down default (documented per experiment in
//! `EXPERIMENTS.md`) chosen so the full suite completes in minutes while
//! preserving the comparisons the paper makes: which method wins, by roughly
//! what factor, and how the curves move with `k`, `n`, `d` and the data
//! distribution.
//!
//! ## Focal record selection
//!
//! The paper samples focal records uniformly from the dataset.  Under the
//! independent distribution most random records have far more than `k`
//! dominators, which makes their kSPR result empty after the Section 3.1
//! preprocessing; the paper's averages are therefore dominated by the few
//! "competitive" focal records.  To keep the scaled-down runs informative we
//! sample focal records from the `k`-skyband (records that can actually appear
//! in some top-`k`), which concentrates measurement on the non-trivial
//! queries.  This substitution is documented in `EXPERIMENTS.md`.

use kspr::{Algorithm, Dataset, KsprConfig, KsprResult, QueryEngine};
use kspr_datagen::Distribution;
use kspr_spatial::{k_skyband, Record};
use std::time::{Duration, Instant};

/// A ready-to-run benchmark workload: an indexed dataset plus a pool of focal
/// records.
pub struct Workload {
    /// Display label (e.g. `IND`, `HOTEL`).
    pub label: String,
    /// Raw attribute vectors (used by oracles and result validation).
    pub raw: Vec<Vec<f64>>,
    /// The indexed dataset.
    pub dataset: Dataset,
    /// Candidate focal records (indices into `raw`).
    pub focal_pool: Vec<usize>,
}

impl Workload {
    /// Builds a workload from raw vectors.
    ///
    /// The focal pool contains "competitive but not unbeatable" records: they
    /// have between 1 and `k/2` dominators, so their kSPR result is usually
    /// non-empty (the query exercises the full algorithm) without being the
    /// near-total coverage a skyline record produces at large `k`.  This keeps
    /// the scaled-down run times representative; see `EXPERIMENTS.md`.
    pub fn from_raw(label: impl Into<String>, raw: Vec<Vec<f64>>, k: usize) -> Self {
        let records = Record::from_raw(raw.clone());
        let dominated_counts: Vec<usize> = {
            // Count dominators only among the k-skyband candidates; records
            // outside the k-skyband are never eligible anyway.
            let band = k_skyband(&records, k.max(2));
            let band_set: std::collections::HashSet<usize> = band.iter().copied().collect();
            records
                .iter()
                .map(|r| {
                    if !band_set.contains(&r.id) {
                        return usize::MAX;
                    }
                    records
                        .iter()
                        .filter(|o| kspr_spatial::dominates(&o.values, &r.values))
                        .count()
                })
                .collect()
        };
        let preferred: Vec<usize> = dominated_counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != usize::MAX && c >= 1 && c <= (k / 2).max(1))
            .map(|(i, _)| i)
            .collect();
        let fallback: Vec<usize> = dominated_counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != usize::MAX && c >= 1 && c < k)
            .map(|(i, _)| i)
            .collect();
        let mut focal_pool = if !preferred.is_empty() {
            preferred
        } else if !fallback.is_empty() {
            fallback
        } else {
            k_skyband(&records, k.max(2))
        };
        if focal_pool.is_empty() {
            focal_pool = (0..raw.len().min(16)).collect();
        }
        let dataset = Dataset::new(raw.clone());
        Self {
            label: label.into(),
            raw,
            dataset,
            focal_pool,
        }
    }

    /// Synthetic workload with one of the paper's standard distributions.
    pub fn synthetic(dist: Distribution, n: usize, d: usize, k: usize, seed: u64) -> Self {
        let raw = kspr_datagen::generate(dist, n, d, seed);
        Self::from_raw(dist.label(), raw, k)
    }

    /// HOTEL-like surrogate workload (4 attributes).
    pub fn hotel(n: usize, k: usize, seed: u64) -> Self {
        Self::from_raw("HOTEL", kspr_datagen::hotel_like(n, seed), k)
    }

    /// HOUSE-like surrogate workload (6 attributes).
    pub fn house(n: usize, k: usize, seed: u64) -> Self {
        Self::from_raw("HOUSE", kspr_datagen::house_like(n, seed), k)
    }

    /// NBA-like surrogate workload (8 attributes).
    pub fn nba(n: usize, k: usize, seed: u64) -> Self {
        Self::from_raw("NBA", kspr_datagen::nba_like(n, seed), k)
    }

    /// Picks `count` focal records, evenly spread over the focal pool.
    pub fn focals(&self, count: usize) -> Vec<Vec<f64>> {
        if self.focal_pool.is_empty() {
            return Vec::new();
        }
        let step = (self.focal_pool.len() / count.max(1)).max(1);
        self.focal_pool
            .iter()
            .step_by(step)
            .take(count)
            .map(|&i| self.raw[i].clone())
            .collect()
    }
}

/// Measurement of one algorithm over a set of focal records.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Algorithm that was run.
    pub algorithm: Algorithm,
    /// Average wall-clock time per query.
    pub avg_time: Duration,
    /// Average number of processed records (hyperplanes inserted).
    pub avg_processed: f64,
    /// Average number of CellTree nodes.
    pub avg_nodes: f64,
    /// Average number of result regions.
    pub avg_regions: f64,
    /// Average simulated I/O time in milliseconds (Appendix A).
    pub avg_io_ms: f64,
    /// Average number of LP feasibility tests.
    pub avg_feasibility_tests: f64,
    /// Average constraints per feasibility test.
    pub avg_constraints: f64,
    /// Number of queries measured.
    pub queries: usize,
}

/// Runs `algorithm` for every focal record (sequentially, through one shared
/// [`QueryEngine`]) and averages the results.
pub fn measure(
    algorithm: Algorithm,
    dataset: &Dataset,
    focals: &[Vec<f64>],
    k: usize,
    config: &KsprConfig,
) -> Measurement {
    let engine = QueryEngine::new(dataset, config.clone());
    let mut total_time = Duration::ZERO;
    let mut results = Vec::with_capacity(focals.len());
    for focal in focals {
        let start = Instant::now();
        let result = engine.run(algorithm, focal, k);
        total_time += start.elapsed();
        results.push(result);
    }
    summarize(algorithm, total_time, &results, focals.len())
}

/// Runs `algorithm` for every focal record through
/// [`QueryEngine::run_batch`] (parallel workers + shared preprocessing) and
/// averages the results.  `avg_time` is the *batch wall-clock divided by the
/// number of queries*, i.e. the effective per-query latency of batch mode.
pub fn measure_batch(
    algorithm: Algorithm,
    dataset: &Dataset,
    focals: &[Vec<f64>],
    k: usize,
    config: &KsprConfig,
) -> Measurement {
    let engine = QueryEngine::new(dataset, config.clone());
    let start = Instant::now();
    let results = engine.run_batch(algorithm, focals, k);
    let total_time = start.elapsed();
    summarize(algorithm, total_time, &results, focals.len())
}

fn summarize(
    algorithm: Algorithm,
    total_time: Duration,
    results: &[KsprResult],
    queries: usize,
) -> Measurement {
    let mut processed = 0usize;
    let mut nodes = 0usize;
    let mut regions = 0usize;
    let mut io_ms = 0.0f64;
    let mut tests = 0usize;
    let mut constraints = 0usize;
    for result in results {
        processed += result.stats.processed_records;
        nodes += result.stats.celltree_nodes;
        regions += result.num_regions();
        io_ms += result.stats.io_time_ms;
        tests += result.stats.feasibility_tests;
        constraints += result.stats.lp_constraints;
    }
    let q = queries.max(1);
    Measurement {
        algorithm,
        avg_time: total_time / q as u32,
        avg_processed: processed as f64 / q as f64,
        avg_nodes: nodes as f64 / q as f64,
        avg_regions: regions as f64 / q as f64,
        avg_io_ms: io_ms / q as f64,
        avg_feasibility_tests: tests as f64 / q as f64,
        avg_constraints: if tests == 0 {
            0.0
        } else {
            constraints as f64 / tests as f64
        },
        queries,
    }
}

/// Runs one query and returns the result together with its wall-clock time.
pub fn timed_query(
    algorithm: Algorithm,
    dataset: &Dataset,
    focal: &[f64],
    k: usize,
    config: &KsprConfig,
) -> (Duration, KsprResult) {
    let start = Instant::now();
    let result = kspr::run(algorithm, dataset, focal, k, config);
    (start.elapsed(), result)
}

/// Pretty-prints a duration in seconds with millisecond resolution.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Experiment scale, selectable from the command line of the `experiments`
/// binary: `quick` for CI-sized runs, `full` for the paper-shaped sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small parameters: every experiment finishes in seconds.
    Quick,
    /// The scaled-down defaults documented in `EXPERIMENTS.md`.
    Full,
}

impl Scale {
    /// Parses `"quick"` / `"full"` (anything else defaults to quick).
    pub fn parse(s: &str) -> Scale {
        match s {
            "full" => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Default dataset cardinality for this scale.
    pub fn default_n(&self) -> usize {
        match self {
            Scale::Quick => 2_000,
            Scale::Full => 20_000,
        }
    }

    /// Default number of focal records (queries) per measurement point.
    pub fn queries(&self) -> usize {
        match self {
            Scale::Quick => 3,
            Scale::Full => 10,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_focal_pool_is_nontrivial() {
        let w = Workload::synthetic(Distribution::Independent, 500, 3, 10, 1);
        assert!(!w.focal_pool.is_empty());
        assert_eq!(w.raw.len(), 500);
        assert_eq!(w.focals(5).len().min(5), w.focals(5).len());
        assert!(!w.focals(5).is_empty());
    }

    #[test]
    fn measure_reports_averages() {
        let w = Workload::synthetic(Distribution::Independent, 300, 3, 5, 2);
        let focals = w.focals(2);
        let m = measure(
            Algorithm::LpCta,
            &w.dataset,
            &focals,
            5,
            &KsprConfig::default(),
        );
        assert_eq!(m.queries, focals.len());
        assert!(m.avg_time > Duration::ZERO);
    }

    #[test]
    fn measure_batch_agrees_with_sequential_measure() {
        let w = Workload::synthetic(Distribution::Independent, 300, 3, 5, 2);
        let focals = w.focals(3);
        let config = KsprConfig::default();
        let seq = measure(Algorithm::LpCta, &w.dataset, &focals, 5, &config);
        let batch = measure_batch(Algorithm::LpCta, &w.dataset, &focals, 5, &config);
        assert_eq!(seq.queries, batch.queries);
        assert_eq!(seq.avg_regions, batch.avg_regions);
        assert_eq!(seq.avg_processed, batch.avg_processed);
        assert_eq!(seq.avg_nodes, batch.avg_nodes);
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("full"), Scale::Full);
        assert_eq!(Scale::parse("quick"), Scale::Quick);
        assert_eq!(Scale::parse("garbage"), Scale::Quick);
        assert!(Scale::Full.default_n() > Scale::Quick.default_n());
    }
}
