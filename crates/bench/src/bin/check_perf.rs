//! CI perf-trajectory smoke checker for the sectioned `BENCH_perf.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p kspr-bench --bin check_perf -- [path] [section...]
//! ```
//!
//! * `[path]` defaults to `BENCH_perf.json` in the working directory.
//! * `[section...]` are the sections that must be present; with none given,
//!   every section found in the file is checked.
//!
//! Checks, per section: the section parses as a JSON object, carries a
//! `"scale"` tag, and every number in it is finite.  Sections with known
//! shapes get structural checks on top — the `telemetry` section must
//! report all seven pipeline stages with live counts, the `trace` section
//! must have retained well-formed traces and a non-empty export, and the
//! speedup-style sections (`batch`, `update`, `approx`) must report
//! positive timings.  Exits non-zero with a message on the first failure,
//! so a workflow step can gate on it directly.

use kspr_telemetry::{parse_json, JsonValue};

fn fail(message: impl AsRef<str>) -> ! {
    eprintln!("[check_perf] FAIL: {}", message.as_ref());
    std::process::exit(1);
}

/// Every number reachable from `value` must be finite (the emitters write
/// plain decimal, but a NaN/inf regression would render as `NaN`/`inf` and
/// already fail parsing — this guards the parsed tree end to end anyway).
fn assert_finite(section: &str, value: &JsonValue) {
    match value {
        JsonValue::Number(n) if !n.is_finite() => {
            fail(format!("section `{section}` contains a non-finite number"));
        }
        JsonValue::Array(items) => items.iter().for_each(|v| assert_finite(section, v)),
        JsonValue::Object(members) => members.iter().for_each(|(_, v)| assert_finite(section, v)),
        _ => {}
    }
}

fn number(section: &str, value: &JsonValue, key: &str) -> f64 {
    value
        .get(key)
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| fail(format!("section `{section}` is missing numeric `{key}`")))
}

/// The pipeline stages the `telemetry` section must report (mirrors
/// `kspr_telemetry::Stage::ALL`).
const STAGES: [&str; 7] = [
    "queue",
    "admission",
    "batch",
    "engine",
    "wal_commit",
    "ack",
    "notify",
];

const PHASES: [&str; 4] = ["prep", "expansion", "lp", "dominance"];

fn check_section(name: &str, section: &JsonValue) {
    if section.as_object().is_none() {
        fail(format!("section `{name}` is not a JSON object"));
    }
    if section.get("scale").and_then(|v| v.as_str()).is_none() {
        fail(format!("section `{name}` is missing its `scale` tag"));
    }
    assert_finite(name, section);
    match name {
        "telemetry" => {
            let stages = section
                .get("stages")
                .unwrap_or_else(|| fail("telemetry section has no `stages` object"));
            for stage in STAGES {
                let entry = stages.get(stage).unwrap_or_else(|| {
                    fail(format!("telemetry section is missing stage `{stage}`"))
                });
                if number("telemetry", entry, "count") < 1.0 {
                    fail(format!("telemetry stage `{stage}` recorded nothing"));
                }
            }
        }
        "trace" => {
            if number(name, section, "retained_traces") < 1.0 {
                fail("trace section retained no span trees");
            }
            if number(name, section, "export_events") < 1.0 {
                fail("trace section exported no chrome-trace events");
            }
            if number(name, section, "export_bytes") < 2.0 {
                fail("trace section export is empty");
            }
            let phases = section
                .get("phases")
                .unwrap_or_else(|| fail("trace section has no `phases` object"));
            for phase in PHASES {
                let entry = phases
                    .get(phase)
                    .unwrap_or_else(|| fail(format!("trace section is missing phase `{phase}`")));
                if number("trace", entry, "count") < 1.0 {
                    fail(format!("trace phase `{phase}` recorded nothing"));
                }
            }
        }
        "batch" => {
            let algorithms = section
                .get("algorithms")
                .and_then(|v| v.as_object())
                .unwrap_or_else(|| fail("batch section has no `algorithms` object"));
            for (algorithm, row) in algorithms {
                if number("batch", row, "sequential_secs") <= 0.0
                    || number("batch", row, "batch_secs") <= 0.0
                {
                    fail(format!("batch timings for `{algorithm}` are not positive"));
                }
            }
        }
        "update" => {
            let mixes = section
                .get("mixes")
                .and_then(|v| v.as_object())
                .unwrap_or_else(|| fail("update section has no `mixes` object"));
            for (mix, row) in mixes {
                if number("update", row, "incremental_secs") <= 0.0
                    || number("update", row, "rebuild_secs") <= 0.0
                {
                    fail(format!("update timings for mix `{mix}` are not positive"));
                }
            }
        }
        "approx" => {
            let frontier = section
                .get("frontier")
                .and_then(|v| v.as_object())
                .unwrap_or_else(|| fail("approx section has no `frontier` object"));
            for (mix, rows) in frontier {
                let rows = rows
                    .as_array()
                    .unwrap_or_else(|| fail(format!("approx frontier `{mix}` is not an array")));
                if rows.is_empty() {
                    fail(format!("approx frontier `{mix}` has no rows"));
                }
                for row in rows {
                    if number("approx", row, "samples") < 1.0 {
                        fail(format!("approx frontier `{mix}` drew no samples"));
                    }
                }
            }
        }
        _ => {}
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (path, wanted) = match args.split_first() {
        Some((first, rest)) if first.ends_with(".json") => (first.as_str(), rest),
        _ => ("BENCH_perf.json", &args[..]),
    };
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|err| fail(format!("could not read {path}: {err}")));
    let json = parse_json(&text).unwrap_or_else(|| fail(format!("{path} is not valid JSON")));
    let sections = json
        .as_object()
        .unwrap_or_else(|| fail(format!("{path} is not a JSON object")));

    let mut checked = 0usize;
    if wanted.is_empty() {
        for (name, section) in sections {
            check_section(name, section);
            checked += 1;
        }
    } else {
        for name in wanted {
            let section = sections
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v)
                .unwrap_or_else(|| fail(format!("{path} has no `{name}` section")));
            check_section(name, section);
            checked += 1;
        }
    }
    if checked == 0 {
        fail(format!("{path} has no sections to check"));
    }
    println!("[check_perf] OK: {checked} section(s) of {path} verified");
}
