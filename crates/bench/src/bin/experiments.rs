//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p kspr-bench --bin experiments -- <experiment> [scale]
//! ```
//!
//! * `<experiment>` is one of `fig9`, `fig10a`, `fig10b`, `fig11`, `fig12`,
//!   `fig13`, `fig14`, `fig15`, `fig16`, `fig17`, `fig18`, `fig19`, `fig20`,
//!   `fig22`, `fig23`, `fig24`, `batch` (beyond-the-paper: sequential loop
//!   vs `QueryEngine::run_batch`), `update` (beyond-the-paper: incremental
//!   insert/delete + re-query vs full rebuild), `serve` (beyond-the-paper:
//!   sharded serving front-end vs a single engine), `monitor`
//!   (beyond-the-paper: standing-query patching vs naive re-run), `approx`
//!   (beyond-the-paper: the guaranteed-error approximate tier — the
//!   speed/quality frontier and Auto routing), `parallel` (beyond-the-paper:
//!   intra-query work-stealing CellTree expansion — single-query latency and
//!   batch throughput vs worker count, also emitted as machine-readable
//!   `BENCH_perf.json`), `recovery` (beyond-the-paper: WAL commit overhead
//!   and crash-recovery replay time of the durable serving store),
//!   `telemetry` (beyond-the-paper: per-stage latency percentiles of the
//!   serving pipeline, measured through the `kspr-telemetry` stage traces),
//!   `trace` (beyond-the-paper: end-to-end span tracing over the wire —
//!   client trace ids, flight-recorder retention, engine phase histograms,
//!   and the `/trace` chrome-trace export), or `all`.  The `approx`,
//!   `batch`, `monitor`, `parallel`, `recovery`, `serve`, `telemetry`,
//!   `trace`, and `update` experiments each update their own section of
//!   `BENCH_perf.json`.
//! * `[scale]` is `quick` (default) or `full`; the parameter values for each
//!   scale are documented in `EXPERIMENTS.md`.
//! * `parallel` accepts an optional third argument: a comma-separated
//!   intra-query worker-count list (default `1,2,4`; the 1-worker baseline
//!   is always measured).
//!
//! Every experiment prints the same rows / series the corresponding figure of
//! the paper reports (response time, result size, processed records, …), so
//! the output can be compared shape-for-shape with the published plots.

use kspr::{Algorithm, BoundMode, Dataset, KsprConfig, PreferenceSpace};
use kspr_bench::{fmt_secs, measure, measure_batch, Scale, Workload};
use kspr_datagen::Distribution;
use kspr_geometry::{ConstraintSystem, Hyperplane, Polytope, Sign};
use kspr_spatial::{AggregateRTree, IoCostModel, Record};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(|s| s.as_str()).unwrap_or("all");
    let scale = Scale::parse(args.get(2).map(|s| s.as_str()).unwrap_or("quick"));
    let extra = args.get(3).map(|s| s.as_str());
    let start = Instant::now();
    run_experiment(which, scale, extra);
    eprintln!(
        "\n[experiments] total wall-clock: {:.1}s",
        start.elapsed().as_secs_f64()
    );
}

fn run_experiment(which: &str, scale: Scale, extra: Option<&str>) {
    match which {
        "fig9" => fig9(scale),
        "fig10a" => fig10a(scale),
        "fig10b" => fig10b(scale),
        "fig11" => fig11(scale),
        "fig12" => fig12(scale),
        "fig13" => fig13(scale),
        "fig14" => fig14(scale),
        "fig15" => fig15(scale),
        "fig16" => fig16(scale),
        "fig17" => fig17(scale),
        "fig18" => fig18(scale),
        "fig19" => fig19(scale),
        "fig20" => fig20(scale),
        "fig22" => fig22(scale),
        "fig23" => fig23(scale),
        "fig24" => fig24(scale),
        "batch" => batch(scale),
        "update" => update(scale),
        "serve" => serve(scale),
        "monitor" => monitor(scale),
        "approx" => approx(scale),
        "parallel" => parallel(scale, extra),
        "recovery" => recovery(scale),
        "telemetry" => telemetry(scale),
        "trace" => trace(scale),
        "all" => {
            for e in [
                "fig9",
                "fig10a",
                "fig10b",
                "fig11",
                "fig12",
                "fig13",
                "fig14",
                "fig15",
                "fig16",
                "fig17",
                "fig18",
                "fig19",
                "fig20",
                "fig22",
                "fig23",
                "fig24",
                "batch",
                "update",
                "serve",
                "monitor",
                "approx",
                "parallel",
                "recovery",
                "telemetry",
                "trace",
            ] {
                run_experiment(e, scale, None);
                println!();
            }
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            std::process::exit(2);
        }
    }
}

/// Shared parameter sets per scale.
struct Params {
    n_default: usize,
    d_default: usize,
    k_default: usize,
    k_values: Vec<usize>,
    n_values: Vec<usize>,
    d_values: Vec<usize>,
    queries: usize,
}

fn params(scale: Scale) -> Params {
    match scale {
        Scale::Quick => Params {
            n_default: 1_500,
            d_default: 4,
            k_default: 10,
            k_values: vec![5, 10, 15, 20],
            n_values: vec![500, 1_000, 2_000, 4_000],
            d_values: vec![2, 3, 4, 5],
            queries: 3,
        },
        Scale::Full => Params {
            n_default: 20_000,
            d_default: 4,
            k_default: 30,
            k_values: vec![10, 30, 50, 70, 90],
            n_values: vec![2_000, 5_000, 10_000, 20_000, 50_000],
            d_values: vec![2, 3, 4, 5, 6],
            queries: 10,
        },
    }
}

fn header(title: &str, paper_item: &str) {
    println!("================================================================");
    println!("{title}");
    println!("(reproduces {paper_item})");
    println!("================================================================");
}

// ---------------------------------------------------------------------------
// Section 7.2 — case study
// ---------------------------------------------------------------------------

fn fig9(_scale: Scale) {
    header(
        "Case study: focal player's kSPR regions across two seasons",
        "Figure 9 (Section 7.2), on surrogate NBA data",
    );
    let k = 3;
    let league = kspr_datagen::nba_seasons(250, 42);
    for (label, season) in [
        ("2014-2015", &league.season1),
        ("2015-2016", &league.season2),
    ] {
        let focal = season[league.focal].clone();
        let competitors: Vec<Vec<f64>> = season
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != league.focal)
            .map(|(_, v)| v.clone())
            .collect();
        let dataset = Dataset::new(competitors);
        let result = kspr::run(
            Algorithm::LpCta,
            &dataset,
            &focal,
            k,
            &KsprConfig::default(),
        );
        // Area-weighted centroid over (points weight, rebounds weight).
        let mut area = 0.0;
        let mut cx = 0.0;
        let mut cy = 0.0;
        for r in &result.regions {
            if let Some(p) = &r.polytope {
                let a = p.volume(0, 0);
                let c = p.centroid();
                area += a;
                cx += a * c[0];
                cy += a * c[1];
            }
        }
        let (cx, cy) = if area > 0.0 {
            (cx / area, cy / area)
        } else {
            (0.0, 0.0)
        };
        println!(
            "season {label}: regions={:>4}  impact={:>6.2}%  region-centre (w_points, w_rebounds) = ({:.2}, {:.2})",
            result.num_regions(),
            100.0 * result.impact(50_000, 1),
            cx,
            cy
        );
    }
    println!(
        "expected shape: both seasons competitive; centre moves from high w_points to high w_rebounds"
    );
}

// ---------------------------------------------------------------------------
// Section 7.3 — performance evaluation
// ---------------------------------------------------------------------------

fn fig10a(scale: Scale) {
    header(
        "LP-CTA vs RTOPK on 2-dimensional data, varying k",
        "Figure 10(a)",
    );
    let p = params(scale);
    println!("{:<6} {:>14} {:>14}", "k", "LP-CTA (s)", "RTOPK (s)");
    for &k in &p.k_values {
        let w = Workload::synthetic(Distribution::Independent, p.n_default, 2, k, 11);
        let focals = w.focals(p.queries);
        let config = KsprConfig::default();
        let lp = measure(Algorithm::LpCta, &w.dataset, &focals, k, &config);
        let rt = measure(Algorithm::Rtopk, &w.dataset, &focals, k, &config);
        println!(
            "{:<6} {:>14} {:>14}",
            k,
            fmt_secs(lp.avg_time),
            fmt_secs(rt.avg_time)
        );
    }
    println!(
        "expected shape: both fast; RTOPK scans every non-dominated record, LP-CTA a small subset"
    );
}

fn fig10b(scale: Scale) {
    header(
        "CTA / P-CTA / LP-CTA / iMaxRank, varying k (IND, d = 4)",
        "Figure 10(b)",
    );
    let p = params(scale);
    // The iMaxRank baseline explodes quickly; the paper itself fails to finish
    // it beyond small settings.  We run it on a reduced dataset.
    let baseline_n = match scale {
        Scale::Quick => 60,
        Scale::Full => 150,
    };
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>20}",
        "k", "CTA (s)", "P-CTA (s)", "LP-CTA (s)", "iMaxRank (s)"
    );
    for &k in &p.k_values {
        let w = Workload::synthetic(Distribution::Independent, p.n_default, p.d_default, k, 12);
        let focals = w.focals(p.queries);
        let config = KsprConfig::default();
        let cta = measure(Algorithm::Cta, &w.dataset, &focals, k, &config);
        let pcta = measure(Algorithm::Pcta, &w.dataset, &focals, k, &config);
        let lpcta = measure(Algorithm::LpCta, &w.dataset, &focals, k, &config);
        let wb = Workload::synthetic(Distribution::Independent, baseline_n, 3, k, 12);
        let bfocals = wb.focals(p.queries.min(2));
        let imax = measure(Algorithm::IMaxRank, &wb.dataset, &bfocals, k, &config);
        println!(
            "{:<6} {:>12} {:>12} {:>12} {:>12} (n={})",
            k,
            fmt_secs(cta.avg_time),
            fmt_secs(pcta.avg_time),
            fmt_secs(lpcta.avg_time),
            fmt_secs(imax.avg_time),
            baseline_n,
        );
    }
    println!(
        "expected shape: LP-CTA <= P-CTA << CTA; iMaxRank slowest even on a much smaller dataset"
    );
}

fn fig11(scale: Scale) {
    header(
        "Processed records and CellTree nodes, varying k (IND, d = 4)",
        "Figure 11",
    );
    let p = params(scale);
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "k", "rec CTA", "rec P", "rec LP", "nodes CTA", "nodes P", "nodes LP"
    );
    for &k in &p.k_values {
        let w = Workload::synthetic(Distribution::Independent, p.n_default, p.d_default, k, 13);
        let focals = w.focals(p.queries);
        let config = KsprConfig::default();
        let cta = measure(Algorithm::Cta, &w.dataset, &focals, k, &config);
        let pcta = measure(Algorithm::Pcta, &w.dataset, &focals, k, &config);
        let lpcta = measure(Algorithm::LpCta, &w.dataset, &focals, k, &config);
        println!(
            "{:<6} {:>10.0} {:>10.0} {:>10.0} {:>12.0} {:>12.0} {:>12.0}",
            k,
            cta.avg_processed,
            pcta.avg_processed,
            lpcta.avg_processed,
            cta.avg_nodes,
            pcta.avg_nodes,
            lpcta.avg_nodes
        );
    }
    println!("expected shape: P-CTA/LP-CTA process far fewer records and nodes than CTA");
}

fn fig12(scale: Scale) {
    header(
        "Response time and CellTree size, varying dataset cardinality n (IND)",
        "Figure 12",
    );
    let p = params(scale);
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>14}",
        "n", "CTA (s)", "P-CTA (s)", "LP-CTA (s)", "LP nodes"
    );
    for &n in &p.n_values {
        let w = Workload::synthetic(Distribution::Independent, n, p.d_default, p.k_default, 14);
        let focals = w.focals(p.queries);
        let config = KsprConfig::default();
        // CTA becomes impractical quickly; cap it at the smaller cardinalities
        // just as the paper stops plotting methods that exceed the time budget.
        let cta_time = if n <= p.n_values[1] {
            fmt_secs(measure(Algorithm::Cta, &w.dataset, &focals, p.k_default, &config).avg_time)
        } else {
            ">budget".to_string()
        };
        let pcta = measure(Algorithm::Pcta, &w.dataset, &focals, p.k_default, &config);
        let lpcta = measure(Algorithm::LpCta, &w.dataset, &focals, p.k_default, &config);
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>14.0}",
            n,
            cta_time,
            fmt_secs(pcta.avg_time),
            fmt_secs(lpcta.avg_time),
            lpcta.avg_nodes
        );
    }
    println!("expected shape: LP-CTA scales best with n; the gap to P-CTA widens as n grows");
}

fn fig13(scale: Scale) {
    header(
        "Response time and result size, varying dimensionality d (IND)",
        "Figure 13 (incl. the result-size table of Fig. 13b)",
    );
    let p = params(scale);
    println!(
        "{:<6} {:>12} {:>12} {:>14}",
        "d", "P-CTA (s)", "LP-CTA (s)", "result size"
    );
    for &d in &p.d_values {
        let w = Workload::synthetic(Distribution::Independent, p.n_default, d, p.k_default, 15);
        let focals = w.focals(p.queries);
        let config = KsprConfig::default();
        let pcta = measure(Algorithm::Pcta, &w.dataset, &focals, p.k_default, &config);
        let lpcta = measure(Algorithm::LpCta, &w.dataset, &focals, p.k_default, &config);
        println!(
            "{:<6} {:>12} {:>12} {:>14.2}",
            d,
            fmt_secs(pcta.avg_time),
            fmt_secs(lpcta.avg_time),
            lpcta.avg_regions
        );
    }
    println!("expected shape: result size and response time grow quickly with d");
}

fn fig14(scale: Scale) {
    header(
        "LP-CTA response time and result size per data distribution, varying k",
        "Figure 14",
    );
    let p = params(scale);
    println!(
        "{:<6} {:>6} {:>14} {:>14}",
        "dist", "k", "LP-CTA (s)", "result size"
    );
    for dist in Distribution::all() {
        for &k in &p.k_values {
            let w = Workload::synthetic(dist, p.n_default, p.d_default, k, 16);
            let focals = w.focals(p.queries);
            let m = measure(
                Algorithm::LpCta,
                &w.dataset,
                &focals,
                k,
                &KsprConfig::default(),
            );
            println!(
                "{:<6} {:>6} {:>14} {:>14.2}",
                dist.label(),
                k,
                fmt_secs(m.avg_time),
                m.avg_regions
            );
        }
    }
    println!("expected shape: ANTI slowest with the most regions, COR fastest with the fewest");
}

fn fig15(scale: Scale) {
    header(
        "P-CTA vs LP-CTA on the real-data surrogates, varying k",
        "Figure 15",
    );
    let p = params(scale);
    let (hotel_n, house_n, nba_n) = match scale {
        Scale::Quick => (2_000, 1_500, 1_000),
        Scale::Full => (40_000, 30_000, 20_000),
    };
    println!(
        "{:<8} {:>6} {:>12} {:>12} {:>14}",
        "dataset", "k", "P-CTA (s)", "LP-CTA (s)", "result size"
    );
    for &k in &p.k_values {
        for (name, w) in [
            ("HOTEL", Workload::hotel(hotel_n, k, 21)),
            ("HOUSE", Workload::house(house_n, k, 22)),
            ("NBA", Workload::nba(nba_n, k, 23)),
        ] {
            let focals = w.focals(p.queries);
            let config = KsprConfig::default();
            let pcta = measure(Algorithm::Pcta, &w.dataset, &focals, k, &config);
            let lpcta = measure(Algorithm::LpCta, &w.dataset, &focals, k, &config);
            println!(
                "{:<8} {:>6} {:>12} {:>12} {:>14.2}",
                name,
                k,
                fmt_secs(pcta.avg_time),
                fmt_secs(lpcta.avg_time),
                lpcta.avg_regions
            );
        }
    }
    println!("expected shape: LP-CTA at or below P-CTA on every dataset");
}

// ---------------------------------------------------------------------------
// Section 7.4 — effectiveness of individual optimizations
// ---------------------------------------------------------------------------

/// Builds `cells` random cell descriptions from an arrangement of `m`
/// hyperplanes: each description is the full set of planes together with an
/// interior point that fixes the sign of every plane (mimicking the setup of
/// Figures 16 and 17, where random CellTree leaves are examined).
fn random_cells(m: usize, d: usize, cells: usize, seed: u64) -> (Vec<Hyperplane>, Vec<Vec<f64>>) {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let space = PreferenceSpace::transformed(d);
    let raw = kspr_datagen::generate(Distribution::Independent, m * 3, d, seed);
    let focal = vec![0.5; d];
    let planes: Vec<Hyperplane> = raw
        .iter()
        .filter(|r| !kspr_spatial::dominates(r, &focal) && !kspr_spatial::dominates(&focal, r))
        .take(m)
        .map(|r| Hyperplane::separating(r, &focal, &space))
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC311);
    let mut points = Vec::with_capacity(cells);
    while points.len() < cells {
        let point: Vec<f64> = (0..d - 1).map(|_| rng.gen_range(0.01..0.99)).collect();
        if point.iter().sum::<f64>() < 0.99 {
            points.push(point);
        }
    }
    (planes, points)
}

fn fig16(scale: Scale) {
    header(
        "Feasibility test: LP (lp_solve-style) vs exact halfspace intersection (qhull-style)",
        "Figure 16",
    );
    let p = params(scale);
    let cells = match scale {
        Scale::Quick => 20,
        Scale::Full => 100,
    };
    let m_values: Vec<usize> = match scale {
        Scale::Quick => vec![50, 100, 200],
        Scale::Full => vec![500, 1_000, 5_000, 10_000],
    };
    println!(
        "-- effect of the number of inserted hyperplanes m (d = {}) --",
        p.d_default
    );
    println!("{:<8} {:>16} {:>16}", "m", "LP test (s)", "qhull-style (s)");
    for &m in &m_values {
        let (t_lp, t_geom) = feasibility_comparison(m, p.d_default, cells, 31);
        println!("{:<8} {:>16.4} {:>16.4}", m, t_lp, t_geom);
    }
    println!("-- effect of dimensionality d (m = {}) --", m_values[0]);
    println!("{:<8} {:>16} {:>16}", "d", "LP test (s)", "qhull-style (s)");
    for &d in &p.d_values {
        if d < 3 {
            continue;
        }
        let (t_lp, t_geom) = feasibility_comparison(m_values[0], d, cells, 32);
        println!("{:<8} {:>16.4} {:>16.4}", d, t_lp, t_geom);
    }
    println!(
        "expected shape: the LP test is one to two orders of magnitude faster, and the gap widens with d"
    );
}

/// Total time to test `cells` random cells of an `m`-plane arrangement for
/// feasibility with (a) the LP test and (b) exact vertex enumeration on the
/// reduced constraint set.
fn feasibility_comparison(m: usize, d: usize, cells: usize, seed: u64) -> (f64, f64) {
    let (planes, points) = random_cells(m, d, cells, seed);
    let space = PreferenceSpace::transformed(d);
    let mut lp_total = 0.0;
    let mut geom_total = 0.0;
    for point in &points {
        let mut sys = ConstraintSystem::new(space);
        for h in &planes {
            let sign = match h.side(point) {
                Some(Sign::Positive) => Sign::Positive,
                _ => Sign::Negative,
            };
            sys.push_halfspace(h, sign);
        }
        let t = Instant::now();
        let _ = sys.is_feasible();
        lp_total += t.elapsed().as_secs_f64();

        let t = Instant::now();
        let reduced =
            kspr_geometry::polytope::reduce_constraints(sys.constraints(), space.work_dim());
        let _ = Polytope::from_constraints(&reduced, space.work_dim());
        geom_total += t.elapsed().as_secs_f64();
    }
    (lp_total, geom_total)
}

fn fig17(scale: Scale) {
    header(
        "Effect of Lemma 2 (eliminating inconsequential halfspaces)",
        "Figure 17",
    );
    let p = params(scale);
    println!(
        "{:<8} {:>18} {:>18} {:>14} {:>14}",
        "k", "constraints/LP", "constraints/LP", "time (s)", "time (s)"
    );
    println!(
        "{:<8} {:>18} {:>18} {:>14} {:>14}",
        "", "with Lemma 2", "without", "with", "without"
    );
    for &k in &p.k_values {
        let w = Workload::synthetic(Distribution::Independent, p.n_default, p.d_default, k, 17);
        let focals = w.focals(p.queries);
        let with = measure(
            Algorithm::LpCta,
            &w.dataset,
            &focals,
            k,
            &KsprConfig::default(),
        );
        let without_cfg = KsprConfig {
            use_lemma2: false,
            ..KsprConfig::default()
        };
        let without = measure(Algorithm::LpCta, &w.dataset, &focals, k, &without_cfg);
        println!(
            "{:<8} {:>18.1} {:>18.1} {:>14} {:>14}",
            k,
            with.avg_constraints,
            without.avg_constraints,
            fmt_secs(with.avg_time),
            fmt_secs(without.avg_time)
        );
    }
    println!(
        "expected shape: Lemma 2 sharply cuts the constraint count per LP call and the response time"
    );
}

fn fig18(scale: Scale) {
    header(
        "Effectiveness of record / group / fast bounds in LP-CTA",
        "Figure 18",
    );
    let p = params(scale);
    println!(
        "{:<6} {:>16} {:>16} {:>16}",
        "k", "fast_bounds (s)", "group_bounds (s)", "record_bounds (s)"
    );
    for &k in &p.k_values {
        let w = Workload::synthetic(Distribution::Independent, p.n_default, p.d_default, k, 18);
        let focals = w.focals(p.queries);
        let fast = measure(
            Algorithm::LpCta,
            &w.dataset,
            &focals,
            k,
            &KsprConfig::with_bound_mode(BoundMode::Fast),
        );
        let group = measure(
            Algorithm::LpCta,
            &w.dataset,
            &focals,
            k,
            &KsprConfig::with_bound_mode(BoundMode::Group),
        );
        let record = measure(
            Algorithm::LpCta,
            &w.dataset,
            &focals,
            k,
            &KsprConfig::with_bound_mode(BoundMode::Record),
        );
        println!(
            "{:<6} {:>16} {:>16} {:>16}",
            k,
            fmt_secs(fast.avg_time),
            fmt_secs(group.avg_time),
            fmt_secs(record.avg_time)
        );
    }
    println!("-- effect of dimensionality (k = {}) --", p.k_default);
    println!(
        "{:<6} {:>16} {:>16} {:>16}",
        "d", "fast_bounds (s)", "group_bounds (s)", "record_bounds (s)"
    );
    for &d in &p.d_values {
        let w = Workload::synthetic(Distribution::Independent, p.n_default, d, p.k_default, 19);
        let focals = w.focals(p.queries);
        let fast = measure(
            Algorithm::LpCta,
            &w.dataset,
            &focals,
            p.k_default,
            &KsprConfig::with_bound_mode(BoundMode::Fast),
        );
        let group = measure(
            Algorithm::LpCta,
            &w.dataset,
            &focals,
            p.k_default,
            &KsprConfig::with_bound_mode(BoundMode::Group),
        );
        let record = measure(
            Algorithm::LpCta,
            &w.dataset,
            &focals,
            p.k_default,
            &KsprConfig::with_bound_mode(BoundMode::Record),
        );
        println!(
            "{:<6} {:>16} {:>16} {:>16}",
            d,
            fmt_secs(fast.avg_time),
            fmt_secs(group.avg_time),
            fmt_secs(record.avg_time)
        );
    }
    println!("expected shape: fast <= group <= record bounds in response time");
}

// ---------------------------------------------------------------------------
// Appendices
// ---------------------------------------------------------------------------

fn fig19(scale: Scale) {
    header(
        "Disk-based scenario: CPU time + simulated I/O time",
        "Figure 19 (Appendix A)",
    );
    let p = params(scale);
    let config_io = KsprConfig {
        io_model: Some(IoCostModel::default()),
        ..KsprConfig::default()
    };
    println!(
        "{:<6} {:>14} {:>12} {:>14} {:>12}",
        "k", "P-CTA cpu(s)", "P-CTA io(s)", "LP-CTA cpu(s)", "LP-CTA io(s)"
    );
    for &k in &p.k_values {
        let w = Workload::synthetic(Distribution::Independent, p.n_default, p.d_default, k, 20);
        let focals = w.focals(p.queries);
        let pcta = measure(Algorithm::Pcta, &w.dataset, &focals, k, &config_io);
        let lpcta = measure(Algorithm::LpCta, &w.dataset, &focals, k, &config_io);
        println!(
            "{:<6} {:>14} {:>12.4} {:>14} {:>12.4}",
            k,
            fmt_secs(pcta.avg_time),
            pcta.avg_io_ms / 1000.0,
            fmt_secs(lpcta.avg_time),
            lpcta.avg_io_ms / 1000.0
        );
    }
    println!(
        "expected shape: LP-CTA incurs more I/O (it consults the data index per cell) but lower total time"
    );
}

fn fig20(scale: Scale) {
    header(
        "P-CTA vs the k-skyband approach, varying k",
        "Figure 20 (Appendix B)",
    );
    let p = params(scale);
    println!(
        "{:<6} {:>14} {:>14} {:>14} {:>14}",
        "k", "P-CTA rec", "skyband rec", "P-CTA (s)", "skyband (s)"
    );
    for &k in &p.k_values {
        let w = Workload::synthetic(Distribution::Independent, p.n_default, p.d_default, k, 24);
        let focals = w.focals(p.queries);
        let config = KsprConfig::default();
        let pcta = measure(Algorithm::Pcta, &w.dataset, &focals, k, &config);
        let band = measure(Algorithm::KSkyband, &w.dataset, &focals, k, &config);
        println!(
            "{:<6} {:>14.0} {:>14.0} {:>14} {:>14}",
            k,
            pcta.avg_processed,
            band.avg_processed,
            fmt_secs(pcta.avg_time),
            fmt_secs(band.avg_time)
        );
    }
    println!(
        "expected shape: the k-skyband contains many more records than P-CTA processes, and is slower"
    );
}

fn fig22(scale: Scale) {
    header(
        "Transformed vs original preference space (P-CTA/LP-CTA vs OP-CTA/OLP-CTA)",
        "Figure 22 (Appendix C)",
    );
    let p = params(scale);
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12}",
        "k", "P-CTA (s)", "OP-CTA (s)", "LP-CTA (s)", "OLP-CTA (s)"
    );
    for &k in &p.k_values {
        let w = Workload::synthetic(Distribution::Independent, p.n_default, p.d_default, k, 25);
        let focals = w.focals(p.queries);
        let transformed = KsprConfig::default();
        let original = KsprConfig::original_space();
        let pcta = measure(Algorithm::Pcta, &w.dataset, &focals, k, &transformed);
        let opcta = measure(Algorithm::Pcta, &w.dataset, &focals, k, &original);
        let lpcta = measure(Algorithm::LpCta, &w.dataset, &focals, k, &transformed);
        let olpcta = measure(Algorithm::LpCta, &w.dataset, &focals, k, &original);
        println!(
            "{:<6} {:>12} {:>12} {:>12} {:>12}",
            k,
            fmt_secs(pcta.avg_time),
            fmt_secs(opcta.avg_time),
            fmt_secs(lpcta.avg_time),
            fmt_secs(olpcta.avg_time)
        );
    }
    println!("expected shape: the original-space variants are consistently slower");
}

fn fig23(scale: Scale) {
    header(
        "Index construction cost (aggregate R-tree bulk load)",
        "Figure 23 (Appendix D)",
    );
    let p = params(scale);
    println!("{:<8} {:>18}", "n", "aR-tree build (s)");
    for &n in &p.n_values {
        let raw = kspr_datagen::generate(Distribution::Independent, n, p.d_default, 26);
        let records = Record::from_raw(raw);
        let t = Instant::now();
        let tree = AggregateRTree::bulk_load(records, 32);
        let secs = t.elapsed().as_secs_f64();
        println!("{:<8} {:>18.4}   (nodes: {})", n, secs, tree.num_nodes());
    }
    println!("{:<8} {:>18}", "d", "aR-tree build (s)");
    for &d in &p.d_values {
        let raw = kspr_datagen::generate(Distribution::Independent, p.n_default, d, 27);
        let records = Record::from_raw(raw);
        let t = Instant::now();
        let tree = AggregateRTree::bulk_load(records, 32);
        let secs = t.elapsed().as_secs_f64();
        println!("{:<8} {:>18.4}   (nodes: {})", d, secs, tree.num_nodes());
    }
    println!("expected shape: build time grows linearly with n and mildly with d");
}

fn batch(scale: Scale) {
    header(
        "Batched query serving: sequential loop vs QueryEngine::run_batch",
        "beyond the paper — parallel workers + shared preprocessing (see EXPERIMENTS.md)",
    );
    let p = params(scale);
    let queries = match scale {
        Scale::Quick => 8,
        Scale::Full => 32,
    };
    println!(
        "cores: {}",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    println!(
        "{:<10} {:>8} {:>16} {:>16} {:>10}",
        "algorithm", "queries", "sequential (s)", "batch (s)", "speedup"
    );
    let w = Workload::synthetic(
        Distribution::Independent,
        p.n_default,
        p.d_default,
        p.k_default,
        33,
    );
    let focals = w.focals(queries);
    let config = KsprConfig::default();
    let mut body = String::from("{\n");
    body.push_str(&format!("    \"scale\": \"{}\",\n", scale_label(scale)));
    body.push_str(&format!(
        "    \"n\": {},\n    \"d\": {},\n    \"k\": {},\n    \"queries\": {},\n",
        p.n_default,
        p.d_default,
        p.k_default,
        focals.len()
    ));
    body.push_str("    \"algorithms\": {\n");
    let algorithms = [Algorithm::Pcta, Algorithm::LpCta];
    for (i, alg) in algorithms.into_iter().enumerate() {
        let seq = measure(alg, &w.dataset, &focals, p.k_default, &config);
        let batch = measure_batch(alg, &w.dataset, &focals, p.k_default, &config);
        let seq_total = seq.avg_time.as_secs_f64() * focals.len() as f64;
        let batch_total = batch.avg_time.as_secs_f64() * focals.len() as f64;
        let speedup = seq_total / batch_total.max(1e-12);
        println!(
            "{:<10} {:>8} {:>16.4} {:>16.4} {:>9.2}x",
            alg.label(),
            focals.len(),
            seq_total,
            batch_total,
            speedup,
        );
        body.push_str(&format!(
            "      \"{}\": {{\"sequential_secs\": {seq_total:.6}, \"batch_secs\": \
             {batch_total:.6}, \"speedup\": {speedup:.4}}}{}\n",
            alg.label(),
            if i + 1 == algorithms.len() { "" } else { "," },
        ));
    }
    body.push_str("    }\n  }");
    println!("expected shape: speedup approaches the core count for CPU-bound workloads");
    match write_bench_perf_section("batch", &body) {
        Ok(path) => eprintln!("[batch] wrote {path}"),
        Err(err) => eprintln!("[batch] could not write BENCH_perf.json: {err}"),
    }
}

fn update(scale: Scale) {
    header(
        "Dynamic updates: incremental insert/delete + re-query vs full rebuild",
        "beyond the paper — mutable DatasetStore + incremental SharedPrep (see EXPERIMENTS.md)",
    );
    let p = params(scale);
    let (n, rounds) = match scale {
        Scale::Quick => (2_000, 3),
        Scale::Full => (10_000, 5),
    };
    let k = p.k_default;
    let w = Workload::synthetic(Distribution::Independent, n, p.d_default, k, 44);
    let config = KsprConfig::default();

    // Two serving mixes.  "lookup": deeply dominated focal records — the
    // common case for uniformly drawn focals, answered from preprocessing
    // alone, so the per-update maintenance cost dominates the cycle.
    // "competitive": skyband-adjacent focal records with non-trivial result
    // regions, where query time itself is substantial on both sides.
    let mixes = [("lookup", w.lookup_focals(8)), ("competitive", w.focals(2))];
    println!(
        "n = {n}, d = {}, k = {k}, {rounds} update rounds",
        p.d_default
    );
    println!(
        "{:<14} {:>8} {:>18} {:>18} {:>10}",
        "query mix", "queries", "incremental (s)", "rebuild (s)", "speedup"
    );
    let mut body = String::from("{\n");
    body.push_str(&format!("    \"scale\": \"{}\",\n", scale_label(scale)));
    body.push_str(&format!(
        "    \"n\": {n},\n    \"d\": {},\n    \"k\": {k},\n    \"rounds\": {rounds},\n",
        p.d_default
    ));
    body.push_str("    \"mixes\": {\n");
    let num_mixes = mixes.len();
    for (i, (label, focals)) in mixes.into_iter().enumerate() {
        let cmp = kspr_bench::measure_update_cycles(
            &w,
            &focals,
            k,
            &config,
            Algorithm::LpCta,
            rounds,
            45,
        );
        let verdict = if label == "lookup" {
            if cmp.speedup() >= 2.0 {
                "  (>= 2x target: PASS)"
            } else {
                "  (>= 2x target: FAIL)"
            }
        } else {
            ""
        };
        println!(
            "{:<14} {:>8} {:>18.4} {:>18.4} {:>9.2}x{verdict}",
            label,
            focals.len(),
            cmp.incremental,
            cmp.rebuild,
            cmp.speedup(),
        );
        body.push_str(&format!(
            "      \"{label}\": {{\"queries\": {}, \"incremental_secs\": {:.6}, \
             \"rebuild_secs\": {:.6}, \"speedup\": {:.4}}}{}\n",
            focals.len(),
            cmp.incremental,
            cmp.rebuild,
            cmp.speedup(),
            if i + 1 == num_mixes { "" } else { "," },
        ));
    }
    body.push_str("    }\n  }");
    match write_bench_perf_section("update", &body) {
        Ok(path) => eprintln!("[update] wrote {path}"),
        Err(err) => eprintln!("[update] could not write BENCH_perf.json: {err}"),
    }
    println!(
        "expected shape: incremental maintenance is O(log n + band) per insert / non-band delete \
         (a band-member delete adds one targeted O(n) promotion scan) vs O(n log n + n k) per \
         rebuild; steady-state batches recompute zero shared preps (counter-asserted)"
    );
}

fn serve(scale: Scale) {
    use kspr_serve::{ServeOptions, Server, ShardedEngine};
    header(
        "Sharded batch serving: engine pool + merged candidate union vs one engine",
        "beyond the paper — kspr-serve front-end (see EXPERIMENTS.md)",
    );
    let p = params(scale);
    let (n, queries, comp_rounds, lookup_rounds) = match scale {
        Scale::Quick => (4_000, 8, 2, 20),
        Scale::Full => (20_000, 32, 3, 20),
    };
    let k = p.k_default;
    let w = Workload::synthetic(Distribution::Independent, n, p.d_default, k, 77);
    let config = KsprConfig::default();

    // Two serving mixes, mirroring the `update` experiment.  "steady-state":
    // deeply dominated focal records — the common case for uniformly drawn
    // focals, where the per-query O(n) preprocessing dominates and the merged
    // candidate union pays off directly.  "competitive": skyband-adjacent
    // focals whose arrangement traversal (identical on both sides) dominates;
    // the sharded gain is correspondingly small.
    let mixes = [
        ("steady-state", w.lookup_focals(2 * queries), lookup_rounds),
        ("competitive", w.focals(queries), comp_rounds),
    ];
    println!("n = {n}, d = {}, k = {k}, LP-CTA", p.d_default);
    println!(
        "{:<14} {:<8} {:>12} {:>16} {:>16} {:>10}",
        "query mix", "shards", "candidates", "1-engine (s)", "sharded (s)", "speedup"
    );
    for (label, focals, rounds) in &mixes {
        for shards in [1usize, 2, 4, 8] {
            let cmp = kspr_bench::measure_sharded_serving(
                &w,
                focals,
                k,
                &config,
                Algorithm::LpCta,
                shards,
                *rounds,
            );
            let verdict = if *label == "steady-state" && shards == 4 {
                if cmp.speedup() >= 1.5 {
                    "  (>= 1.5x target: PASS)"
                } else {
                    "  (>= 1.5x target: FAIL)"
                }
            } else {
                ""
            };
            println!(
                "{:<14} {:<8} {:>12} {:>16.4} {:>16.4} {:>9.2}x{verdict}",
                label,
                shards,
                if shards == 1 {
                    format!("{} (passthru)", cmp.records)
                } else {
                    cmp.candidates.to_string()
                },
                cmp.single,
                cmp.sharded,
                cmp.speedup(),
            );
        }
    }
    let focals = w.focals(queries);

    // The full front-end, per shard count: a request queue over the sharded
    // pool, including a stream of updates interleaved with the query batches
    // — the wire-facing qps the service actually delivers.
    println!(
        "front-end   {:<8} {:>10} {:>12} {:>16} {:>14}",
        "shards", "queries", "updates", "elapsed (s)", "qps"
    );
    let mut points: Vec<(usize, usize, f64, u64, u64)> = Vec::new();
    let mut last_tombstones = (0usize, 0.0f64);
    for shards in [1usize, 2, 4, 8] {
        let engine = ShardedEngine::new(w.raw.clone(), KsprConfig::default().with_shards(shards));
        let server = Server::start(engine, ServeOptions::default());
        let handle = server.handle();
        let start = Instant::now();
        let mut answered = 0usize;
        for round in 0..comp_rounds {
            let tickets = handle.submit_many(focals.clone(), k);
            let id = handle
                .insert(vec![0.5 + 0.001 * round as f64; p.d_default])
                .wait()
                .expect("insert");
            for t in tickets {
                t.wait().expect("query");
                answered += 1;
            }
            handle.delete(id).wait().expect("delete");
        }
        let elapsed = start.elapsed().as_secs_f64();
        let (engine, stats) = server.shutdown();
        let qps = answered as f64 / elapsed.max(1e-12);
        println!(
            "            {:<8} {:>10} {:>12} {:>16.3} {:>14.1}",
            shards, answered, stats.updates, elapsed, qps
        );
        points.push((
            shards,
            answered,
            qps,
            stats.batches,
            stats.largest_batch as u64,
        ));
        last_tombstones = (engine.tombstone_count(), engine.tombstone_ratio());
    }
    report_tombstones(last_tombstones.0, last_tombstones.1);

    // Admission control under the same burst: a zero-width degradation
    // watermark answers every tiered query approximately, a zero hard limit
    // sheds every query, and a zero per-client quota rejects per client —
    // each decision shows up in the serving counters.
    let burst = focals.len();
    let admission_engine =
        || ShardedEngine::new(w.raw.clone(), KsprConfig::default().with_shards(4));
    let mut degrade = ServeOptions::default();
    degrade.admission.degrade_watermark = 0;
    let server = Server::start(admission_engine(), degrade);
    let handle = server.handle();
    let tickets: Vec<_> = focals
        .iter()
        .map(|f| handle.submit_tiered(Algorithm::LpCta, f.clone(), k, kspr::QueryTier::Exact))
        .collect();
    for t in tickets {
        t.wait().expect("degraded query");
    }
    let (_, degraded_stats) = server.shutdown();
    assert_eq!(degraded_stats.degraded_to_approx, burst as u64);

    let mut shed = ServeOptions::default();
    shed.admission.hard_limit = 0;
    let server = Server::start(admission_engine(), shed);
    let handle = server.handle();
    let tickets: Vec<_> = focals.iter().map(|f| handle.submit(f.clone(), k)).collect();
    let rejected = tickets
        .into_iter()
        .map(|t| t.wait())
        .filter(Result::is_err)
        .count();
    let (_, shed_stats) = server.shutdown();
    assert_eq!(shed_stats.rejections.overloaded, burst as u64);
    assert_eq!(rejected, burst);

    println!(
        "admission: watermark 0 degraded {}/{burst} tiered queries to the approximate tier; \
         hard limit 0 shed {}/{burst} with Overloaded",
        degraded_stats.degraded_to_approx, shed_stats.rejections.overloaded,
    );
    println!(
        "expected shape: sharding prunes the per-query preprocessing to the union of \
         per-shard k-skybands — >= 1.5x at 4 shards on the steady-state batch workload; \
         competitive queries are arrangement-bound, so their gain is small"
    );
    match write_bench_perf_serve(
        scale,
        n,
        p.d_default,
        k,
        &points,
        burst,
        degraded_stats.degraded_to_approx,
        shed_stats.rejections.overloaded,
    ) {
        Ok(path) => eprintln!("[serve] wrote {path}"),
        Err(err) => eprintln!("[serve] could not write BENCH_perf.json: {err}"),
    }
}

/// Emits the `serve` experiment's front-end sweep into the `"serve"` section
/// of `BENCH_perf.json`: wire-facing qps per shard count plus the admission
/// counters of the degradation / load-shedding demos.
#[allow(clippy::too_many_arguments)]
fn write_bench_perf_serve(
    scale: Scale,
    n: usize,
    d: usize,
    k: usize,
    points: &[(usize, usize, f64, u64, u64)],
    burst: usize,
    degraded: u64,
    shed: u64,
) -> std::io::Result<String> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("    \"scale\": \"{}\",\n", scale_label(scale)));
    out.push_str(&format!(
        "    \"n\": {n},\n    \"d\": {d},\n    \"k\": {k},\n"
    ));
    out.push_str("    \"algorithm\": \"LPCTA\",\n");
    out.push_str(
        "    \"workload\": \"submit_many batches interleaved with insert/delete pairs\",\n",
    );
    out.push_str("    \"shard_scaling\": [\n");
    for (i, (shards, queries, qps, batches, largest)) in points.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"shards\": {shards}, \"queries\": {queries}, \"qps\": {qps:.3}, \
             \"run_batch_calls\": {batches}, \"largest_batch\": {largest}}}{}\n",
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("    ],\n");
    out.push_str(&format!(
        "    \"admission\": {{\"burst\": {burst}, \"degraded_to_approx\": {degraded}, \
         \"rejected_overloaded\": {shed}}}\n"
    ));
    out.push_str("  }");
    write_bench_perf_section("serve", &out)
}

/// The `recovery` experiment: what durability costs while serving (WAL
/// commit per update batch, fsync included) and what a crash costs at
/// restart (snapshot load + WAL replay + standing-query re-registration).
fn recovery(scale: Scale) {
    use kspr_durable::{DurableStore, Registration, SnapshotState, WalRecord};
    use kspr_serve::{ServeOptions, Server, ShardedEngine};
    header(
        "Durable serving: WAL commit overhead and crash-recovery replay",
        "beyond the paper — kspr-durable WAL/snapshot store (see EXPERIMENTS.md)",
    );
    let p = params(scale);
    let (n, updates, standing) = match scale {
        Scale::Quick => (2_000, 300, 8),
        Scale::Full => (20_000, 3_000, 64),
    };
    let w = Workload::synthetic(Distribution::Independent, n, p.d_default, p.k_default, 177);
    let config = KsprConfig::default().with_shards(4);
    let dir = std::env::temp_dir().join(format!("kspr-recovery-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- WAL overhead: the same update stream, volatile vs durable ---
    let run_updates = |server: &Server| {
        let handle = server.handle();
        let start = Instant::now();
        for i in 0..updates {
            let id = handle
                .insert(vec![0.4 + 0.0001 * (i % 100) as f64; p.d_default])
                .wait()
                .expect("insert");
            if i % 2 == 1 {
                handle.delete(id).wait().expect("delete");
            }
        }
        start.elapsed().as_secs_f64()
    };
    let volatile = Server::start(
        ShardedEngine::new(w.raw.clone(), config.clone()),
        ServeOptions::default(),
    );
    let volatile_secs = run_updates(&volatile);
    volatile.shutdown();
    let durable = Server::start_durable(
        ShardedEngine::new(w.raw.clone(), config.clone()),
        ServeOptions::default(),
        &dir,
    )
    .expect("open durable server");
    let durable_secs = run_updates(&durable);
    let (_, stats) = durable.shutdown();
    println!(
        "{updates} updates over n = {n}: volatile {volatile_secs:.3}s, durable {durable_secs:.3}s \
         ({:.2}x, {} WAL commits, {} snapshots)",
        durable_secs / volatile_secs.max(1e-12),
        stats.wal_commits,
        stats.snapshots,
    );

    // --- Crash recovery: a snapshot plus a WAL tail that must replay ---
    // Built directly through the store (a clean shutdown would truncate the
    // WAL): every update and registration after the snapshot is a log
    // record, exactly what a crash mid-serving leaves behind.
    let _ = std::fs::remove_dir_all(&dir);
    let store = DurableStore::open(&dir).expect("open store");
    let mut engine = ShardedEngine::new(w.raw.clone(), config.clone());
    store
        .install_snapshot(&SnapshotState {
            dim: engine.dim(),
            num_shards: engine.num_shards(),
            next_shard: engine.routing_cursor(),
            shard_epochs: engine.export_epochs(),
            slots: engine.export_slots(),
            monitor_next_id: 0,
            registrations: (0..standing as u64)
                .map(|id| Registration {
                    id,
                    algorithm: Algorithm::LpCta,
                    focal: w.raw[id as usize % w.raw.len()].clone(),
                    k: p.k_default,
                })
                .collect(),
        })
        .expect("install snapshot");
    let mut writer = store.wal_writer(false).expect("open WAL");
    for i in 0..updates {
        let id = engine.insert(vec![0.4 + 0.0001 * (i % 100) as f64; p.d_default]);
        writer.append(&WalRecord::Insert {
            id,
            values: vec![0.4 + 0.0001 * (i % 100) as f64; p.d_default],
        });
        if i % 2 == 1 {
            engine.delete(id);
            writer.append(&WalRecord::Delete { id });
        }
    }
    writer.commit().expect("commit WAL");
    drop(writer);
    let wal_bytes = std::fs::metadata(store.wal_path())
        .map(|m| m.len())
        .unwrap_or(0);
    drop(store);

    let start = Instant::now();
    let server = Server::recover(&dir, config, ServeOptions::default()).expect("recover");
    let recover_secs = start.elapsed().as_secs_f64();
    let handle = server.handle();
    assert_eq!(handle.subscriptions().wait(), Ok(standing));
    let focal = w.focals(1).pop().expect("focal");
    handle
        .submit(focal, p.k_default)
        .wait()
        .expect("first post-recovery query");
    let (recovered, _) = server.shutdown();
    assert_eq!(recovered.len(), engine.len());
    println!(
        "recovery: snapshot(n = {n}) + {} WAL records ({wal_bytes} bytes) + {standing} standing \
         queries re-registered in {recover_secs:.3}s",
        updates + updates / 2,
    );
    println!(
        "expected shape: durable serving stays within a small factor of volatile (one \
         write+fsync per update batch); recovery is replay-bound, linear in the WAL tail"
    );
    let _ = std::fs::remove_dir_all(&dir);
    match write_bench_perf_recovery(
        scale,
        n,
        p.d_default,
        updates,
        volatile_secs,
        durable_secs,
        stats.wal_commits,
        wal_bytes,
        standing,
        recover_secs,
    ) {
        Ok(path) => eprintln!("[recovery] wrote {path}"),
        Err(err) => eprintln!("[recovery] could not write BENCH_perf.json: {err}"),
    }
}

/// Emits the `recovery` experiment's measurements into the `"recovery"`
/// section of `BENCH_perf.json`.
#[allow(clippy::too_many_arguments)]
fn write_bench_perf_recovery(
    scale: Scale,
    n: usize,
    d: usize,
    updates: usize,
    volatile_secs: f64,
    durable_secs: f64,
    wal_commits: u64,
    wal_bytes: u64,
    standing: usize,
    recover_secs: f64,
) -> std::io::Result<String> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("    \"scale\": \"{}\",\n", scale_label(scale)));
    out.push_str(&format!("    \"n\": {n},\n    \"d\": {d},\n"));
    out.push_str(&format!("    \"updates\": {updates},\n"));
    out.push_str(&format!(
        "    \"volatile_secs\": {volatile_secs:.6},\n    \"durable_secs\": {durable_secs:.6},\n"
    ));
    out.push_str(&format!(
        "    \"durable_overhead\": {:.3},\n",
        durable_secs / volatile_secs.max(1e-12)
    ));
    out.push_str(&format!(
        "    \"wal_commits\": {wal_commits},\n    \"replayed_wal_bytes\": {wal_bytes},\n"
    ));
    out.push_str(&format!(
        "    \"standing_reregistered\": {standing},\n    \"recover_secs\": {recover_secs:.6}\n"
    ));
    out.push_str("  }");
    write_bench_perf_section("recovery", &out)
}

/// Beyond the paper: the observability pipeline itself.  Drives a mixed
/// workload (exact / approximate / auto queries, updates, a standing query)
/// through a **durable** server and reads back the per-stage latency
/// histograms every request was traced through — queue wait, admission,
/// batch assembly, engine run, WAL commit, acknowledgement, and
/// standing-query maintenance — then emits their percentiles as the
/// `"telemetry"` section of `BENCH_perf.json`.
fn telemetry(scale: Scale) {
    use kspr::{ErrorBudget, QueryTier};
    use kspr_serve::{ServeOptions, Server, ShardedEngine, Stage};
    use std::time::Duration;
    header(
        "Serving telemetry: per-stage latency percentiles over a mixed workload",
        "beyond the paper — kspr-telemetry stage tracing (see EXPERIMENTS.md)",
    );
    let p = params(scale);
    let (n, queries, updates) = match scale {
        Scale::Quick => (1_500, 240usize, 120usize),
        Scale::Full => (20_000, 2_400, 1_200),
    };
    let w = Workload::synthetic(Distribution::Independent, n, p.d_default, p.k_default, 191);
    let config = KsprConfig::default().with_shards(4);
    let dir = std::env::temp_dir().join(format!("kspr-telemetry-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let options = ServeOptions {
        slow_query_threshold: Some(Duration::from_millis(1)),
        ..ServeOptions::default()
    };
    let server = Server::start_durable(ShardedEngine::new(w.raw.clone(), config), options, &dir)
        .expect("open durable server");
    let handle = server.handle();
    let sub = handle
        .subscribe(w.raw[0].clone(), p.k_default)
        .wait()
        .expect("standing query");
    let budget = ErrorBudget::new(0.1, 0.9);

    // The pool only holds "competitive" focal records, so it may cap the
    // request count below the nominal target; report what was submitted.
    let focals = w.focals(queries);
    let queries = focals.len();
    let start = Instant::now();
    let mut update_round = 0usize;
    for (i, focal) in focals.into_iter().enumerate() {
        match i % 3 {
            0 => {
                handle.submit(focal, p.k_default).wait().expect("exact");
            }
            1 => {
                handle
                    .submit_approx(focal, p.k_default, budget)
                    .wait()
                    .expect("approx");
            }
            _ => {
                handle
                    .submit_tiered(
                        Algorithm::LpCta,
                        focal,
                        p.k_default,
                        QueryTier::Auto {
                            budget,
                            cost_threshold: 1e6,
                        },
                    )
                    .wait()
                    .expect("auto");
            }
        }
        // Interleave updates so the WAL-commit and maintenance stages see
        // the same serving conditions as the queries around them.
        if update_round < updates && i % 2 == 0 {
            let id = handle
                .insert(vec![0.4 + 0.0001 * (i % 100) as f64; p.d_default])
                .wait()
                .expect("insert");
            update_round += 1;
            if update_round < updates && i % 4 == 0 {
                handle.delete(id).wait().expect("delete");
                update_round += 1;
            }
        }
    }
    // Serialize behind the final maintenance pass before reading.
    handle.subscriptions().wait().expect("barrier");
    let wall_secs = start.elapsed().as_secs_f64();
    let snap = handle.metrics();
    let slow = handle.slow_queries();
    drop(sub);

    println!(
        "{queries} queries + {update_round} updates over n = {n} in {wall_secs:.3}s \
         ({} retained in the slow-query log at 1ms)",
        slow.len()
    );
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>12}",
        "stage", "count", "p50 (us)", "p95 (us)", "p99 (us)"
    );
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str(&format!("    \"scale\": \"{}\",\n", scale_label(scale)));
    body.push_str(&format!("    \"n\": {n},\n    \"d\": {},\n", p.d_default));
    body.push_str(&format!(
        "    \"queries\": {queries},\n    \"updates\": {update_round},\n"
    ));
    body.push_str(&format!("    \"wall_secs\": {wall_secs:.6},\n"));
    body.push_str(&format!("    \"slow_queries_retained\": {},\n", slow.len()));
    body.push_str("    \"stages\": {\n");
    for (i, stage) in Stage::ALL.iter().enumerate() {
        let h = snap
            .histogram(&format!("kspr_stage_{}_ns", stage.name()))
            .expect("stage histogram");
        println!(
            "{:<12} {:>10} {:>12.1} {:>12.1} {:>12.1}",
            stage.name(),
            h.count(),
            h.p50() as f64 / 1e3,
            h.quantile(0.95) as f64 / 1e3,
            h.p99() as f64 / 1e3,
        );
        body.push_str(&format!(
            "      \"{}\": {{\"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}{}\n",
            stage.name(),
            h.count(),
            h.p50(),
            h.quantile(0.95),
            h.p99(),
            h.max(),
            if i + 1 == Stage::ALL.len() { "" } else { "," },
        ));
    }
    body.push_str("    }\n");
    body.push_str("  }");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "expected shape: engine time dominates the exact queries; queue wait grows with \
         interleaved updates; WAL commits are fsync-bound"
    );
    match write_bench_perf_section("telemetry", &body) {
        Ok(path) => eprintln!("[telemetry] wrote {path}"),
        Err(err) => eprintln!("[telemetry] could not write BENCH_perf.json: {err}"),
    }
}

/// Beyond the paper: end-to-end span tracing over the wire.  Sends traced
/// queries and updates (client-supplied trace ids over `kspr-wire` v2
/// frames) through a durable [`kspr_serve::NetServer`], verifies every id is
/// echoed and retained as a well-formed span tree, reads the engine's
/// per-phase histograms, and times the `/trace` chrome-trace HTTP export —
/// emitted as the `"trace"` section of `BENCH_perf.json`.
fn trace(scale: Scale) {
    use kspr_serve::{NetServer, ServeOptions, Server, ShardedEngine};
    use kspr_telemetry::parse_json;
    use kspr_wire::{WireClient, WireRequest, WireResponse};
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;
    header(
        "End-to-end tracing: trace-id round-trips, span trees, /trace export",
        "beyond the paper — kspr-telemetry flight recorder (see EXPERIMENTS.md)",
    );
    let p = params(scale);
    let (n, traced_target) = match scale {
        Scale::Quick => (1_500, 24usize),
        Scale::Full => (20_000, 240),
    };
    let w = Workload::synthetic(Distribution::Independent, n, p.d_default, p.k_default, 197);
    let dir = std::env::temp_dir().join(format!("kspr-trace-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start_durable(
        ShardedEngine::new(w.raw.clone(), KsprConfig::default().with_shards(4)),
        ServeOptions::default(),
        &dir,
    )
    .expect("open durable server");
    let handle = server.handle();
    let net = NetServer::bind(server.handle(), "127.0.0.1:0").expect("bind loopback");
    let stream = TcpStream::connect(net.local_addr()).expect("loopback connect");
    let mut client = WireClient::new(stream);

    let focals = w.focals(traced_target);
    let queries = focals.len();
    let start = Instant::now();
    for (i, focal) in focals.into_iter().enumerate() {
        let trace_id = 0x1000 + i as u64;
        let (response, echo) = client
            .call_traced(
                &WireRequest::Query {
                    algorithm: Algorithm::LpCta,
                    focal,
                    k: p.k_default as u64,
                },
                Some(trace_id),
            )
            .expect("traced query");
        assert!(matches!(response, WireResponse::Result(_)));
        assert_eq!(echo, Some(trace_id), "the trace id must be echoed");
        // Interleave traced durable updates so WAL-commit spans show up.
        if i % 4 == 0 {
            let (response, _) = client
                .call_traced(
                    &WireRequest::Insert {
                        values: vec![0.4 + 0.0001 * (i % 100) as f64; p.d_default],
                    },
                    Some(0x9000 + i as u64),
                )
                .expect("traced insert");
            assert!(matches!(response, WireResponse::Inserted { .. }));
        }
    }
    let wall_secs = start.elapsed().as_secs_f64();

    // Flight-recorder retention and span-tree shape.
    let retained = handle.traces();
    let spans_retained: usize = retained.iter().map(|r| r.spans.len()).sum();
    assert!(
        retained.iter().all(|r| r.is_well_formed()),
        "every retained span tree must be well-formed"
    );

    // The /trace export, timed over a raw HTTP GET on the scrape port.
    let export_start = Instant::now();
    let mut scrape = TcpStream::connect(net.local_addr()).expect("trace connect");
    scrape
        .write_all(b"GET /trace HTTP/1.1\r\nHost: localhost\r\n\r\n")
        .expect("send trace request");
    let mut text = String::new();
    scrape.read_to_string(&mut text).expect("read trace");
    let body_json = text.split("\r\n\r\n").nth(1).expect("an HTTP body");
    let export_bytes = body_json.len();
    let json = parse_json(body_json).expect("/trace must serve valid JSON");
    let export_secs = export_start.elapsed().as_secs_f64();
    let events = json
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("a traceEvents array")
        .len();

    println!(
        "{queries} traced queries (+{} traced inserts) over n = {n} in {wall_secs:.3}s",
        queries.div_ceil(4)
    );
    println!(
        "flight recorder: {} trees retained ({} spans); /trace export: {} events, \
         {export_bytes} bytes in {:.1}ms",
        retained.len(),
        spans_retained,
        events,
        export_secs * 1e3
    );
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>12}",
        "phase", "count", "p50 (us)", "p95 (us)", "p99 (us)"
    );
    let snap = handle.metrics();
    const PHASES: [&str; 4] = ["prep", "expansion", "lp", "dominance"];
    let mut body = String::from("{\n");
    body.push_str(&format!("    \"scale\": \"{}\",\n", scale_label(scale)));
    body.push_str(&format!("    \"n\": {n},\n    \"d\": {},\n", p.d_default));
    body.push_str(&format!(
        "    \"traced_requests\": {},\n    \"retained_traces\": {},\n",
        queries + queries.div_ceil(4),
        retained.len()
    ));
    body.push_str(&format!(
        "    \"spans_retained\": {spans_retained},\n    \"export_events\": {events},\n"
    ));
    body.push_str(&format!(
        "    \"export_bytes\": {export_bytes},\n    \"export_secs\": {export_secs:.6},\n"
    ));
    body.push_str(&format!("    \"wall_secs\": {wall_secs:.6},\n"));
    body.push_str("    \"phases\": {\n");
    for (i, phase) in PHASES.iter().enumerate() {
        let h = snap
            .histogram(&format!("kspr_phase_{phase}_ns"))
            .expect("phase histogram");
        println!(
            "{:<12} {:>10} {:>12.1} {:>12.1} {:>12.1}",
            phase,
            h.count(),
            h.p50() as f64 / 1e3,
            h.quantile(0.95) as f64 / 1e3,
            h.p99() as f64 / 1e3,
        );
        body.push_str(&format!(
            "      \"{phase}\": {{\"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \
             \"p99_ns\": {}, \"max_ns\": {}}}{}\n",
            h.count(),
            h.p50(),
            h.quantile(0.95),
            h.p99(),
            h.max(),
            if i + 1 == PHASES.len() { "" } else { "," },
        ));
    }
    body.push_str("    }\n  }");

    drop(client);
    net.stop();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "expected shape: expansion (with its LP solves) dominates prep for competitive \
         focals; the export stays linear in the retained span count"
    );
    match write_bench_perf_section("trace", &body) {
        Ok(path) => eprintln!("[trace] wrote {path}"),
        Err(err) => eprintln!("[trace] could not write BENCH_perf.json: {err}"),
    }
}

/// Prints the live/tombstone slot accounting of a long-running engine.
/// Deleted slots are tombstoned for id stability; the serving dispatcher
/// compacts the store (`ShardedEngine::compact` — shards rewritten down to
/// their live records, dead ids kept allocated but unroutable) once
/// tombstones exceed 50% of all record slots, so a delete-heavy stream
/// hovers below that bound between dispatcher passes.
fn report_tombstones(tombstones: usize, ratio: f64) {
    println!(
        "tombstoned record slots: {tombstones} ({:.1}% of all slots)",
        100.0 * ratio
    );
    if ratio > 0.5 {
        println!(
            "[compaction pending] tombstones exceed 50% of record slots — the serving \
             dispatcher compacts after its next update batch; offline engines can \
             call compact() directly"
        );
    }
}

fn monitor(scale: Scale) {
    use kspr_serve::{ServeOptions, Server, ShardedEngine};
    header(
        "Standing queries: monitor patching vs naive re-run per update",
        "beyond the paper — kspr-monitor standing-query subsystem (see EXPERIMENTS.md)",
    );
    let p = params(scale);
    let (n, rounds) = match scale {
        Scale::Quick => (4_000, 4),
        Scale::Full => (10_000, 8),
    };
    let k = p.k_default;
    let w = Workload::synthetic(Distribution::Independent, n, p.d_default, k, 88);
    let config = KsprConfig::default();

    // Standing-query mixes.  "lookup": deeply dominated focal records under
    // LP-CTA — empty results whose classification is a pair of dominance
    // tests per update.  "competitive": skyband-adjacent focals under the
    // schedule-invariant P-CTA policy, whose region-rich results survive
    // witnessed updates without a rerun.  "competitive·lpcta": the same
    // focals under LP-CTA, whose bound traversals are restricted to the
    // witness skyband so witnessed updates classify away too.
    // "mixed" is the serving blend the kspr-bench lib test gates at >= 2x.
    let lpcta = |f: Vec<Vec<f64>>| -> Vec<(Algorithm, Vec<f64>)> {
        f.into_iter().map(|f| (Algorithm::LpCta, f)).collect()
    };
    let pcta = |f: Vec<Vec<f64>>| -> Vec<(Algorithm, Vec<f64>)> {
        f.into_iter().map(|f| (Algorithm::Pcta, f)).collect()
    };
    let mut mixed = lpcta(w.lookup_focals(12));
    mixed.extend(pcta(w.focals(2)));
    let mixes = [
        ("lookup", lpcta(w.lookup_focals(16))),
        ("competitive", pcta(w.focals(2))),
        ("competitive·lpcta", lpcta(w.focals(2))),
        ("mixed", mixed),
    ];
    println!(
        "n = {n}, d = {}, k = {k}, {rounds} update rounds",
        p.d_default
    );
    println!(
        "{:<18} {:>8} {:>17} {:>15} {:>10}   classification (unaffected/patched/rerun)",
        "standing mix", "queries", "patched (s/upd)", "naive (s/upd)", "speedup"
    );
    for (label, queries) in &mixes {
        let cmp = kspr_bench::measure_monitor_refresh(&w, queries, k, &config, rounds, 89);
        let verdict = if *label == "mixed" {
            if cmp.speedup() >= 2.0 {
                "  (>= 2x target: PASS)"
            } else {
                "  (>= 2x target: FAIL)"
            }
        } else {
            ""
        };
        println!(
            "{:<18} {:>8} {:>17.6} {:>15.6} {:>9.2}x   {}/{}/{}{verdict}",
            label,
            cmp.queries,
            cmp.patched,
            cmp.naive,
            cmp.speedup(),
            cmp.stats.unaffected,
            cmp.stats.patched,
            cmp.stats.reruns,
        );
    }

    // Registry scaling: the subscription-scale path.  The same mixed
    // registry (four CellTree policies, k cycling 1..=8) is maintained
    // through the spatially indexed registry in dispatcher-sized batches and
    // through the pre-index full scan, at growing registry sizes.
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![100, 1_000, 10_000],
        Scale::Full => vec![100, 1_000, 10_000, 100_000],
    };
    let sweep_rounds = match scale {
        Scale::Quick => 8,
        Scale::Full => 12,
    };
    let max_k = 8;
    println!();
    println!(
        "Registry scaling: indexed + batched maintenance vs full-scan per update \
         (batch window {}, {} update rounds)",
        config.monitor_batch_window, sweep_rounds
    );
    println!(
        "{:<10} {:>8} {:>17} {:>19} {:>9} {:>15} {:>15}",
        "queries",
        "updates",
        "indexed (s/upd)",
        "full scan (s/upd)",
        "speedup",
        "visited/upd",
        "pruned/upd"
    );
    let mut points = Vec::new();
    for &size in &sizes {
        let point =
            kspr_bench::measure_registry_scaling(&w, size, max_k, &config, sweep_rounds, 95);
        println!(
            "{:<10} {:>8} {:>17.8} {:>19.8} {:>8.1}x {:>15.1} {:>15.1}",
            point.registered,
            point.updates,
            point.indexed,
            point.full_scan,
            point.speedup(),
            point.visited_per_update(),
            point.pruned_per_update(),
        );
        points.push(point);
    }
    println!(
        "expected shape: full-scan cost grows linearly with the registry while the \
         indexed walk stays near-flat (visited/update is a vanishing fraction of the \
         registry), so the gap widens ~10x per decade; >= 10x at 10^4 is the \
         kspr-bench lib gate"
    );
    match write_bench_perf_monitor(
        scale,
        n,
        p.d_default,
        max_k,
        config.monitor_batch_window,
        &points,
    ) {
        Ok(path) => println!("wrote {path} (monitor section)"),
        Err(err) => eprintln!("could not write BENCH_perf.json: {err}"),
    }

    // The serving front-end: subscriptions streaming result deltas through
    // the dispatcher while updates flow, serialized with the update stream.
    let engine = ShardedEngine::new(w.raw.clone(), config.with_shards(4));
    let server = Server::start(engine, ServeOptions::default());
    let handle = server.handle();
    let subs: Vec<_> = w
        .focals(4)
        .into_iter()
        .map(|f| {
            handle
                .subscribe_with(Algorithm::Pcta, f, k)
                .wait()
                .expect("subscribe")
        })
        .collect();
    let start = Instant::now();
    for round in 0..rounds {
        let id = handle
            .insert(vec![0.5 + 0.001 * round as f64; p.d_default])
            .wait()
            .expect("insert");
        handle.delete(id).wait().expect("delete");
    }
    // A burst of dominators beats every watched option at once: each
    // subscription sees its regions shrink, then recover.
    let strong = handle
        .insert(vec![0.99; p.d_default])
        .wait()
        .expect("insert");
    handle.delete(strong).wait().expect("delete");
    // Serialize behind the updates so every notification is delivered.
    let registered = handle.subscriptions().wait().expect("registry size");
    let elapsed = start.elapsed().as_secs_f64();
    let polled: usize = subs.iter().map(|s| s.poll().len()).sum();
    drop(subs);
    let after_drop = handle.subscriptions().wait().expect("registry size");
    let (_, stats) = server.shutdown();
    println!(
        "front-end (4 shards): {registered} subscriptions, {} updates in {elapsed:.3}s, \
         {polled} deltas polled ({} delivered), registry after drops: {after_drop}",
        stats.updates, stats.notifications,
    );
    println!(
        "dispatcher classification: {} unaffected / {} patched / {} reruns",
        stats.monitor.unaffected, stats.monitor.patched, stats.monitor.reruns,
    );
    println!(
        "expected shape: witnessed updates classify away in microseconds, so patching \
         beats naive re-running by an order of magnitude on lookup-heavy registries; \
         LP-CTA rides along since its bound traversals are witness-skyband restricted"
    );
}

fn approx(scale: Scale) {
    use kspr::{ErrorBudget, QueryTier};
    use kspr_serve::{ServeOptions, Server, ShardedEngine};
    header(
        "Approximate tier: the speed/quality frontier and Auto routing",
        "beyond the paper — kspr-approx guaranteed-error estimates (see EXPERIMENTS.md)",
    );
    let p = params(scale);
    let (n, k, rounds) = match scale {
        Scale::Quick => (3_000, 15, 1),
        Scale::Full => (10_000, 30, 2),
    };
    let w = Workload::synthetic(Distribution::Independent, n, p.d_default, k, 83);
    let config = KsprConfig::default();

    // The frontier: samples vs. error vs. speedup over exact LP-CTA, for
    // the two serving mixes.  "lookup" focals are answered by the exact
    // engine from preprocessing alone (the honest boundary where sampling's
    // fixed cost can lose); "competitive" focals are arrangement-bound —
    // the regime the approximate tier exists for.
    let mixes = [("lookup", w.lookup_focals(4)), ("competitive", w.focals(2))];
    println!("n = {n}, d = {}, k = {k}, confidence 95%", p.d_default);
    println!(
        "{:<14} {:>8} {:>9} {:>12} {:>13} {:>13} {:>9} {:>10}",
        "query mix",
        "epsilon",
        "samples",
        "candidates",
        "exact (s)",
        "approx (s)",
        "speedup",
        "max err"
    );
    let mut body = String::from("{\n");
    body.push_str(&format!("    \"scale\": \"{}\",\n", scale_label(scale)));
    body.push_str(&format!(
        "    \"n\": {n},\n    \"d\": {},\n    \"k\": {k},\n    \"confidence\": 0.95,\n",
        p.d_default
    ));
    body.push_str("    \"frontier\": {\n");
    const EPSILONS: [f64; 3] = [0.1, 0.05, 0.02];
    for (m, (label, focals)) in mixes.iter().enumerate() {
        body.push_str(&format!("      \"{label}\": [\n"));
        for (e, eps) in EPSILONS.into_iter().enumerate() {
            let budget = ErrorBudget::new(eps, 0.95);
            let cmp =
                kspr_bench::measure_approx_frontier(&w, focals, k, &config, &budget, rounds, 85);
            let verdict = if *label == "competitive" && eps == 0.05 {
                if cmp.speedup() >= 5.0 {
                    "  (>= 5x target: PASS)"
                } else {
                    "  (>= 5x target: FAIL)"
                }
            } else {
                ""
            };
            println!(
                "{:<14} {:>8} {:>9} {:>12} {:>13.4} {:>13.4} {:>8.2}x {:>10.4}{verdict}",
                label,
                eps,
                cmp.samples,
                cmp.candidates,
                cmp.exact,
                cmp.approx,
                cmp.speedup(),
                cmp.max_error,
            );
            body.push_str(&format!(
                "        {{\"epsilon\": {eps}, \"samples\": {}, \"candidates\": {}, \
                 \"exact_secs\": {:.6}, \"approx_secs\": {:.6}, \"speedup\": {:.4}, \
                 \"max_error\": {:.6}}}{}\n",
                cmp.samples,
                cmp.candidates,
                cmp.exact,
                cmp.approx,
                cmp.speedup(),
                cmp.max_error,
                if e + 1 == EPSILONS.len() { "" } else { "," },
            ));
        }
        body.push_str(&format!(
            "      ]{}\n",
            if m + 1 == mixes.len() { "" } else { "," }
        ));
    }
    body.push_str("    }\n  }");
    match write_bench_perf_section("approx", &body) {
        Ok(path) => eprintln!("[approx] wrote {path}"),
        Err(err) => eprintln!("[approx] could not write BENCH_perf.json: {err}"),
    }

    // Auto routing: the arrangement-cost estimate (band^work_dim) against
    // the default threshold, across (k, d).  Small k / low d stay exact;
    // arrangement-bound combinations fall back to sampling.
    println!(
        "\nAuto routing (cost = band^(d-1) vs threshold {:.0e}):",
        QueryTier::DEFAULT_COST_THRESHOLD
    );
    println!(
        "{:<6} {:<6} {:>14} {:>10}",
        "d", "k", "est. cost", "routes to"
    );
    for d in [3, p.d_default] {
        for k_probe in [2, k] {
            let wd = Workload::synthetic(Distribution::Independent, n, d, k_probe, 87);
            let engine = kspr::QueryEngine::new(&wd.dataset, config.clone());
            let cost = kspr_approx::estimated_cost(&engine, k_probe);
            let routed = if cost <= QueryTier::DEFAULT_COST_THRESHOLD {
                "exact"
            } else {
                "sampling"
            };
            println!("{:<6} {:<6} {:>14.3e} {:>10}", d, k_probe, cost, routed);
        }
    }

    // The serving front-end: mixed exact/approx/auto submissions, with the
    // per-tier counters the dispatcher reports.
    let budget = ErrorBudget::new(0.05, 0.95);
    let engine = ShardedEngine::new(w.raw.clone(), config.with_shards(4));
    let server = Server::start(engine, ServeOptions::default());
    let handle = server.handle();
    let focals = w.focals(4);
    let start = Instant::now();
    let exact_tickets: Vec<_> = focals.iter().map(|f| handle.submit(f.clone(), k)).collect();
    let approx_tickets: Vec<_> = focals
        .iter()
        .map(|f| handle.submit_approx(f.clone(), k, budget))
        .collect();
    let auto_tickets: Vec<_> = focals
        .iter()
        .map(|f| {
            handle.submit_tiered(
                kspr::Algorithm::LpCta,
                f.clone(),
                k,
                QueryTier::auto(budget),
            )
        })
        .collect();
    for t in exact_tickets {
        t.wait().expect("exact query");
    }
    for t in approx_tickets {
        t.wait().expect("approx query");
    }
    for t in auto_tickets {
        t.wait().expect("auto query");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let (_, stats) = server.shutdown();
    println!(
        "\nfront-end (4 shards): {} queries in {elapsed:.3}s — {} exact / {} approx \
         (auto routed {} exact, {} sampling), {} batches",
        stats.queries,
        stats.exact_queries,
        stats.approx_queries,
        stats.auto_routed_exact,
        stats.auto_routed_approx,
        stats.batches,
    );
    println!(
        "expected shape: the estimate meets the epsilon budget at the Hoeffding sample \
         count; arrangement-bound competitive queries gain >= 5x at eps = 0.05 while \
         lookup queries stay with the (already cheap) exact engine under Auto routing"
    );
}

fn parallel(scale: Scale, workers: Option<&str>) {
    use kspr_bench::measure_parallel_scaling;
    header(
        "Intra-query parallelism: work-stealing CellTree expansion",
        "beyond the paper — per-query worker pools + columnar kernels (see EXPERIMENTS.md)",
    );
    let p = params(scale);
    let (n, k, rounds) = match scale {
        Scale::Quick => (1_500, 10, 1),
        Scale::Full => (8_000, 20, 3),
    };
    // Optional third CLI argument: a comma-separated worker-count list (e.g.
    // `parallel quick 4`).  The 1-worker sequential baseline is always
    // measured so every point has a speedup denominator.
    let mut worker_counts: Vec<usize> = workers
        .map(|spec| {
            spec.split(',')
                .filter_map(|w| w.trim().parse().ok())
                .filter(|&w| w >= 1)
                .collect()
        })
        .filter(|counts: &Vec<usize>| !counts.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4]);
    if !worker_counts.contains(&1) {
        worker_counts.insert(0, 1);
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let w = Workload::synthetic(Distribution::Independent, n, p.d_default, k, 66);
    let config = KsprConfig::default();

    // The two serving mixes of the update/approx experiments: "competitive"
    // focals are arrangement-bound (the regime intra-query workers exist
    // for), "lookup" focals are answered from preprocessing alone, so their
    // numbers show the scheduling overhead floor.
    let mixes = [("competitive", w.focals(2)), ("lookup", w.lookup_focals(8))];
    println!(
        "n = {n}, d = {}, k = {k}, cores = {cores} (P-CTA; LP-CTA is excluded — its \
         look-ahead bound reports depend on expansion order, so it always runs sequentially)",
        p.d_default
    );
    println!(
        "{:<14} {:>8} {:>18} {:>12} {:>10} {:>14}",
        "query mix", "workers", "single query (s)", "batch q/s", "speedup", "par. inserts"
    );
    let mut sweeps = Vec::new();
    for (label, focals) in &mixes {
        let sweep = measure_parallel_scaling(
            &w,
            focals,
            k,
            &config,
            Algorithm::Pcta,
            &worker_counts,
            rounds,
        );
        for point in &sweep.points {
            println!(
                "{:<14} {:>8} {:>18.5} {:>12.2} {:>9.2}x {:>14}",
                label,
                point.workers,
                point.single_query_secs,
                point.batch_qps,
                sweep.speedup_at(point.workers),
                point.parallel_inserts,
            );
        }
        sweeps.push((*label, sweep));
    }
    println!(
        "expected shape: on the competitive mix the single-query speedup approaches the \
         worker count once workers <= cores (the LP-bound classify phase fans out; the \
         apply phase stays sequential); the lookup mix is flat — those queries never \
         reach the CellTree.  Results are asserted bit-identical across worker counts."
    );

    match write_bench_perf(scale, cores, n, p.d_default, k, &sweeps) {
        Ok(path) => println!("wrote {path}"),
        Err(err) => eprintln!("could not write BENCH_perf.json: {err}"),
    }
}

fn scale_label(scale: Scale) -> &'static str {
    if scale == Scale::Full {
        "full"
    } else {
        "quick"
    }
}

/// Emits the `parallel` experiment's measurements into the `"parallel"`
/// section of `BENCH_perf.json` (in the working directory — the repo root
/// when run via `cargo run`).  Hand-rolled like the repo's other
/// serializers: the schema is flat enough that a serde dependency buys
/// nothing.
fn write_bench_perf(
    scale: Scale,
    cores: usize,
    n: usize,
    d: usize,
    k: usize,
    sweeps: &[(&str, kspr_bench::ParallelScaling)],
) -> std::io::Result<String> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("    \"scale\": \"{}\",\n", scale_label(scale)));
    out.push_str(&format!("    \"cores\": {cores},\n"));
    out.push_str(&format!(
        "    \"n\": {n},\n    \"d\": {d},\n    \"k\": {k},\n"
    ));
    out.push_str("    \"algorithm\": \"PCTA\",\n");
    out.push_str("    \"lp_cta_excluded\": \"look-ahead bound reports depend on expansion order; always sequential\",\n");
    out.push_str("    \"mixes\": [\n");
    for (i, (label, sweep)) in sweeps.iter().enumerate() {
        out.push_str("      {\n");
        out.push_str(&format!("        \"mix\": \"{label}\",\n"));
        out.push_str(&format!("        \"queries\": {},\n", sweep.queries));
        out.push_str("        \"points\": [\n");
        for (j, point) in sweep.points.iter().enumerate() {
            out.push_str(&format!(
                "          {{\"workers\": {}, \"single_query_secs\": {:.6}, \"batch_qps\": {:.3}, \
                 \"speedup_vs_1_worker\": {:.3}, \"parallel_inserts\": {}}}{}\n",
                point.workers,
                point.single_query_secs,
                point.batch_qps,
                sweep.speedup_at(point.workers),
                point.parallel_inserts,
                if j + 1 == sweep.points.len() { "" } else { "," },
            ));
        }
        out.push_str("        ]\n");
        out.push_str(&format!(
            "      }}{}\n",
            if i + 1 == sweeps.len() { "" } else { "," }
        ));
    }
    out.push_str("    ]\n  }");
    write_bench_perf_section("parallel", &out)
}

/// Emits the `monitor` experiment's registry-scaling sweep into the
/// `"monitor"` section of `BENCH_perf.json`.
fn write_bench_perf_monitor(
    scale: Scale,
    n: usize,
    d: usize,
    max_k: usize,
    batch_window: usize,
    points: &[kspr_bench::RegistryScalingPoint],
) -> std::io::Result<String> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("    \"scale\": \"{}\",\n", scale_label(scale)));
    out.push_str(&format!(
        "    \"n\": {n},\n    \"d\": {d},\n    \"max_k\": {max_k},\n"
    ));
    out.push_str(&format!("    \"batch_window\": {batch_window},\n"));
    out.push_str("    \"algorithms\": [\"LPCTA\", \"PCTA\", \"CTA\", \"KSKYBAND\"],\n");
    out.push_str(
        "    \"baseline\": \"full-scan registry classified after every single update\",\n",
    );
    out.push_str("    \"points\": [\n");
    for (i, point) in points.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"queries\": {}, \"updates\": {}, \"batch\": {}, \
             \"indexed_secs_per_update\": {:.9}, \"full_scan_secs_per_update\": {:.9}, \
             \"speedup\": {:.3}, \"visited_per_update\": {:.3}, \"index_pruned_per_update\": {:.3}}}{}\n",
            point.registered,
            point.updates,
            point.batch,
            point.indexed,
            point.full_scan,
            point.speedup(),
            point.visited_per_update(),
            point.pruned_per_update(),
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("    ]\n  }");
    write_bench_perf_section("monitor", &out)
}

/// Writes one experiment's section into `BENCH_perf.json`, preserving every
/// other known section already in the file, so the sectioned experiments
/// compose regardless of order.  `body` is the section's rendered JSON
/// object (starting at `{`).
fn write_bench_perf_section(section: &str, body: &str) -> std::io::Result<String> {
    const SECTIONS: [&str; 9] = [
        "approx",
        "batch",
        "monitor",
        "parallel",
        "recovery",
        "serve",
        "telemetry",
        "trace",
        "update",
    ];
    let path = "BENCH_perf.json";
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let mut out = String::from("{\n");
    let mut parts: Vec<(&str, String)> = Vec::new();
    for name in SECTIONS {
        if name == section {
            parts.push((name, body.to_string()));
        } else if let Some(kept) = extract_json_section(&existing, name) {
            parts.push((name, kept));
        }
    }
    for (i, (name, body)) in parts.iter().enumerate() {
        out.push_str(&format!("  \"{name}\": {body}"));
        out.push_str(if i + 1 == parts.len() { "\n" } else { ",\n" });
    }
    out.push_str("}\n");
    std::fs::write(path, out)?;
    Ok(path.to_string())
}

/// Extracts the raw `{...}` object of a top-level `"name": {` key from the
/// hand-rolled `BENCH_perf.json` (brace matching, skipping string literals).
/// Returns `None` when the key is absent — e.g. an empty file, or the
/// pre-section flat layout, which is simply superseded.
fn extract_json_section(text: &str, name: &str) -> Option<String> {
    let key = format!("\"{name}\":");
    let at = text.find(&key)?;
    let open = at + key.len() + text[at + key.len()..].find('{')?;
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in text[open..].char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(text[open..=open + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

fn fig24(scale: Scale) {
    header(
        "Amortized response time (index construction amortized over the query workload)",
        "Figure 24 (Appendix D)",
    );
    let p = params(scale);
    println!(
        "{:<8} {:>14} {:>20}",
        "n", "LP-CTA (s)", "LP-CTA+amortized (s)"
    );
    for &n in &p.n_values {
        let raw = kspr_datagen::generate(Distribution::Independent, n, p.d_default, 28);
        let t = Instant::now();
        let w = Workload::from_raw("IND", raw, p.k_default);
        let build = t.elapsed().as_secs_f64();
        let focals = w.focals(p.queries);
        let m = measure(
            Algorithm::LpCta,
            &w.dataset,
            &focals,
            p.k_default,
            &KsprConfig::default(),
        );
        // The paper amortizes one index build over a 1000-query workload.
        let amortized = m.avg_time.as_secs_f64() + build / 1000.0;
        println!("{:<8} {:>14} {:>20.4}", n, fmt_secs(m.avg_time), amortized);
    }
    println!(
        "expected shape: amortizing the one-off index construction changes response times only marginally"
    );
}
