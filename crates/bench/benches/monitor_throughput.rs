//! Criterion bench (beyond the paper): standing-query maintenance
//! throughput.
//!
//! Compares one (insert + refresh all standing queries, delete + refresh)
//! cycle through the two refresh strategies:
//!
//! * `patched` — a `kspr-monitor` `MonitoredEngine`: each update is
//!   classified per standing query (unaffected / patched in place / rerun)
//!   and only the must-rerun queries touch the engine;
//! * `naive_rerun` — the same incremental engine, re-running every standing
//!   query after every update.
//!
//! The standing set is the mixed serving blend: mostly deeply dominated
//! "lookup" focals under LP-CTA (whose empty results classify away under
//! any update) plus a couple of competitive ones under the
//! schedule-invariant P-CTA policy (whose region-rich results survive
//! witnessed updates without a rerun).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kspr::{Algorithm, KsprConfig, KsprResult, QueryEngine};
use kspr_bench::Workload;
use kspr_datagen::Distribution;
use kspr_monitor::MonitoredEngine;

fn bench_monitor(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor_throughput");
    group.sample_size(10);
    let k = 10usize;
    for n in [1_000usize, 4_000] {
        let w = Workload::synthetic(Distribution::Independent, n, 4, k, 71);
        let mut queries: Vec<(Algorithm, Vec<f64>)> = w
            .lookup_focals(8)
            .into_iter()
            .map(|f| (Algorithm::LpCta, f))
            .collect();
        queries.extend(w.focals(2).into_iter().map(|f| (Algorithm::Pcta, f)));
        let config = KsprConfig::default();
        let record = vec![0.42; 4];
        group.throughput(Throughput::Elements(2)); // two updates per cycle
        group.bench_with_input(BenchmarkId::new("patched", n), &n, |b, _| {
            let mut monitored = MonitoredEngine::new(QueryEngine::new(&w.dataset, config.clone()));
            for (alg, focal) in &queries {
                monitored
                    .register(*alg, focal.clone(), k)
                    .expect("valid standing query");
            }
            b.iter(|| {
                let (id, with) = monitored.insert(record.clone());
                let (_, without) = monitored.delete(id);
                (with, without)
            })
        });
        group.bench_with_input(BenchmarkId::new("naive_rerun", n), &n, |b, _| {
            let mut engine = QueryEngine::new(&w.dataset, config.clone());
            b.iter(|| {
                let id = engine.insert(record.clone());
                let with: Vec<KsprResult> = queries
                    .iter()
                    .map(|(alg, f)| engine.run(*alg, f, k))
                    .collect();
                engine.delete(id);
                let without: Vec<KsprResult> = queries
                    .iter()
                    .map(|(alg, f)| engine.run(*alg, f, k))
                    .collect();
                (with, without)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_monitor);
criterion_main!(benches);
