//! Criterion bench for Figure 16: LP-based feasibility test versus exact
//! halfspace intersection (the qhull-style alternative).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kspr::PreferenceSpace;
use kspr_geometry::{polytope, ConstraintSystem, Hyperplane, Polytope, Sign};

/// Builds a cell description: `m` hyperplanes oriented around an interior point.
fn build_cell(m: usize, d: usize, seed: u64) -> (ConstraintSystem, usize) {
    let space = PreferenceSpace::transformed(d);
    let raw = kspr_datagen::generate(kspr_datagen::Distribution::Independent, m * 2, d, seed);
    let focal = vec![0.5; d];
    let point = vec![0.9 / (d as f64); d - 1];
    let mut sys = ConstraintSystem::new(space);
    let mut added = 0;
    for r in raw.iter() {
        if added == m {
            break;
        }
        if kspr_spatial::dominates(r, &focal) || kspr_spatial::dominates(&focal, r) {
            continue;
        }
        let h = Hyperplane::separating(r, &focal, &space);
        let sign = match h.side(&point) {
            Some(Sign::Positive) => Sign::Positive,
            _ => Sign::Negative,
        };
        sys.push_halfspace(&h, sign);
        added += 1;
    }
    (sys, space.work_dim())
}

fn bench_feasibility(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16_feasibility");
    group.sample_size(10);
    for m in [50usize, 150] {
        let (sys, dim) = build_cell(m, 4, 31);
        group.bench_with_input(BenchmarkId::new("lp_test", m), &m, |b, _| {
            b.iter(|| sys.is_feasible())
        });
        group.bench_with_input(BenchmarkId::new("qhull_style", m), &m, |b, _| {
            b.iter(|| {
                let reduced = polytope::reduce_constraints(sys.constraints(), dim);
                Polytope::from_constraints(&reduced, dim)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_feasibility);
criterion_main!(benches);
