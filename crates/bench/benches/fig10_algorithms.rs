//! Criterion bench for Figure 10: algorithm comparison while varying `k`.
//!
//! Figure 10(a) compares LP-CTA against the RTOPK sweep on 2-dimensional
//! data; Figure 10(b) compares CTA, P-CTA, LP-CTA and the iMaxRank baseline
//! on the default 4-dimensional workload.  Workloads are intentionally small
//! so `cargo bench` stays fast; the `experiments` binary runs the
//! paper-shaped sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kspr::{Algorithm, KsprConfig};
use kspr_bench::Workload;
use kspr_datagen::Distribution;

fn bench_fig10a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10a_d2");
    group.sample_size(10);
    for k in [5usize, 10] {
        let w = Workload::synthetic(Distribution::Independent, 800, 2, k, 11);
        let focal = w.focals(1).remove(0);
        let config = KsprConfig::default();
        for alg in [Algorithm::LpCta, Algorithm::Rtopk] {
            group.bench_with_input(BenchmarkId::new(alg.label(), k), &k, |b, &k| {
                b.iter(|| kspr::run(alg, &w.dataset, &focal, k, &config))
            });
        }
    }
    group.finish();
}

fn bench_fig10b(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10b_d4");
    group.sample_size(10);
    let k = 5usize;
    let w = Workload::synthetic(Distribution::Independent, 600, 4, k, 12);
    let focal = w.focals(1).remove(0);
    let config = KsprConfig::default();
    for alg in [Algorithm::Cta, Algorithm::Pcta, Algorithm::LpCta] {
        group.bench_function(alg.label(), |b| {
            b.iter(|| kspr::run(alg, &w.dataset, &focal, k, &config))
        });
    }
    // iMaxRank on a much smaller instance, as in the paper.
    let wb = Workload::synthetic(Distribution::Independent, 40, 3, k, 12);
    let bfocal = wb.focals(1).remove(0);
    group.bench_function("iMaxRank_small", |b| {
        b.iter(|| kspr::run(Algorithm::IMaxRank, &wb.dataset, &bfocal, k, &config))
    });
    group.finish();
}

criterion_group!(benches, bench_fig10a, bench_fig10b);
criterion_main!(benches);
