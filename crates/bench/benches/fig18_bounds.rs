//! Criterion bench for Figure 18: record vs group vs fast look-ahead bounds
//! in LP-CTA.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kspr::{Algorithm, BoundMode, KsprConfig};
use kspr_bench::Workload;
use kspr_datagen::Distribution;

fn bench_bound_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig18_bounds");
    group.sample_size(10);
    let k = 5usize;
    let w = Workload::synthetic(Distribution::Independent, 800, 4, k, 18);
    let focal = w.focals(1).remove(0);
    for (label, mode) in [
        ("fast_bounds", BoundMode::Fast),
        ("group_bounds", BoundMode::Group),
        ("record_bounds", BoundMode::Record),
    ] {
        let config = KsprConfig::with_bound_mode(mode);
        group.bench_with_input(BenchmarkId::new("LP-CTA", label), &label, |b, _| {
            b.iter(|| kspr::run(Algorithm::LpCta, &w.dataset, &focal, k, &config))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bound_modes);
criterion_main!(benches);
