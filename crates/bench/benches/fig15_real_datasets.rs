//! Criterion bench for Figure 15: the real-dataset surrogates
//! (HOTEL / HOUSE / NBA).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kspr::{Algorithm, KsprConfig};
use kspr_bench::Workload;

fn bench_real_datasets(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_real_datasets");
    group.sample_size(10);
    let k = 5usize;
    let workloads = [
        ("HOTEL", Workload::hotel(800, k, 21)),
        ("HOUSE", Workload::house(600, k, 22)),
        ("NBA", Workload::nba(400, k, 23)),
    ];
    for (name, w) in &workloads {
        let focal = w.focals(1).remove(0);
        let config = KsprConfig::default();
        for alg in [Algorithm::Pcta, Algorithm::LpCta] {
            group.bench_with_input(BenchmarkId::new(alg.label(), name), name, |b, _| {
                b.iter(|| kspr::run(alg, &w.dataset, &focal, k, &config))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_real_datasets);
criterion_main!(benches);
