//! Criterion bench for Figure 22 (Appendix C): processing in the transformed
//! versus the original preference space.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kspr::{Algorithm, KsprConfig};
use kspr_bench::Workload;
use kspr_datagen::Distribution;

fn bench_original_space(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig22_original_space");
    group.sample_size(10);
    let k = 5usize;
    let w = Workload::synthetic(Distribution::Independent, 600, 4, k, 25);
    let focal = w.focals(1).remove(0);
    let transformed = KsprConfig::default();
    let original = KsprConfig::original_space();
    for (label, config) in [("P-CTA", &transformed), ("OP-CTA", &original)] {
        group.bench_with_input(BenchmarkId::new("pcta", label), &label, |b, _| {
            b.iter(|| kspr::run(Algorithm::Pcta, &w.dataset, &focal, k, config))
        });
    }
    for (label, config) in [("LP-CTA", &transformed), ("OLP-CTA", &original)] {
        group.bench_with_input(BenchmarkId::new("lpcta", label), &label, |b, _| {
            b.iter(|| kspr::run(Algorithm::LpCta, &w.dataset, &focal, k, config))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_original_space);
criterion_main!(benches);
