//! Criterion bench for Figure 13: effect of the data dimensionality `d`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kspr::{Algorithm, KsprConfig};
use kspr_bench::Workload;
use kspr_datagen::Distribution;

fn bench_dimensionality(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_dimensionality");
    group.sample_size(10);
    let k = 5usize;
    for d in [2usize, 3, 4] {
        let w = Workload::synthetic(Distribution::Independent, 600, d, k, 15);
        let focal = w.focals(1).remove(0);
        let config = KsprConfig::default();
        for alg in [Algorithm::Pcta, Algorithm::LpCta] {
            group.bench_with_input(BenchmarkId::new(alg.label(), d), &d, |b, _| {
                b.iter(|| kspr::run(alg, &w.dataset, &focal, k, &config))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dimensionality);
criterion_main!(benches);
