//! Criterion bench (beyond the paper): the approximate query tier.
//!
//! Measures the same focal batch answered by the exact engine (LP-CTA) and
//! by the `kspr-approx` sampler at three error budgets, for the two serving
//! mixes of the `approx` experiment:
//!
//! * **competitive** — skyband-adjacent focal records whose arrangement
//!   work dominates the exact side.  The sampler's `O(samples · band)` cost
//!   is independent of the arrangement, so it wins by well over an order of
//!   magnitude at ε = 0.05 (the `>= 5x` bar asserted in the kspr-bench lib
//!   test).
//! * **lookup** — deeply dominated focal records the exact engine answers
//!   from preprocessing alone; the exact side is already cheap, so the gap
//!   narrows (and the sampler's fixed `samples · band` cost can even lose
//!   at tight budgets — the honest boundary of the tier).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kspr::{Algorithm, ErrorBudget, KsprConfig, QueryEngine};
use kspr_approx::ApproxEngine;
use kspr_bench::Workload;
use kspr_datagen::Distribution;

fn bench_approx(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx_throughput");
    group.sample_size(10);
    let k = 10usize;
    let w = Workload::synthetic(Distribution::Independent, 2_000, 4, k, 83);
    let config = KsprConfig::default();

    let mixes = [("competitive", w.focals(4)), ("lookup", w.lookup_focals(4))];
    for (mix, focals) in &mixes {
        group.throughput(Throughput::Elements(focals.len() as u64));

        let engine = QueryEngine::new(&w.dataset, config.clone());
        engine.run_batch(Algorithm::LpCta, focals, k); // warm the prep cache
        group.bench_with_input(BenchmarkId::new(format!("{mix}/exact"), 0), &0, |b, _| {
            b.iter(|| engine.run_batch(Algorithm::LpCta, focals, k))
        });

        for (label, eps) in [("eps_0.10", 0.10), ("eps_0.05", 0.05), ("eps_0.02", 0.02)] {
            let budget = ErrorBudget::new(eps, 0.95);
            group.bench_with_input(
                BenchmarkId::new(format!("{mix}/approx"), label),
                &label,
                |b, _| {
                    b.iter(|| {
                        ApproxEngine::from_engine(&engine, k).estimate_batch(focals, &budget, 7)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_approx);
criterion_main!(benches);
