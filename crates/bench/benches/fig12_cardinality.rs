//! Criterion bench for Figure 12: effect of the dataset cardinality `n`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kspr::{Algorithm, KsprConfig};
use kspr_bench::Workload;
use kspr_datagen::Distribution;

fn bench_cardinality(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_cardinality");
    group.sample_size(10);
    let k = 5usize;
    for n in [400usize, 800, 1_600] {
        let w = Workload::synthetic(Distribution::Independent, n, 4, k, 14);
        let focal = w.focals(1).remove(0);
        let config = KsprConfig::default();
        group.throughput(Throughput::Elements(n as u64));
        for alg in [Algorithm::Pcta, Algorithm::LpCta] {
            group.bench_with_input(BenchmarkId::new(alg.label(), n), &n, |b, _| {
                b.iter(|| kspr::run(alg, &w.dataset, &focal, k, &config))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cardinality);
criterion_main!(benches);
