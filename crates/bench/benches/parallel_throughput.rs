//! Criterion bench (beyond the paper): intra-query parallelism.
//!
//! Measures single-query latency at 1, 2 and 4 intra-query workers on an
//! arrangement-bound competitive workload (P-CTA; LP-CTA always runs
//! sequentially — its look-ahead bound reports depend on expansion order).
//! On a single core the worker counts should be close, with the multi-worker
//! points paying a small scheduling overhead; with four or more cores the
//! 4-worker point should cut single-query latency by well over 2×.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kspr::{Algorithm, KsprConfig, QueryEngine};
use kspr_bench::Workload;
use kspr_datagen::Distribution;

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_throughput");
    group.sample_size(10);
    let k = 10usize;
    let w = Workload::synthetic(Distribution::Independent, 1_500, 4, k, 66);
    let focals = w.focals(2);
    for workers in [1usize, 2, 4] {
        let engine = QueryEngine::new(
            &w.dataset,
            KsprConfig::default().with_intra_query_threads(workers),
        );
        // Warm the shared prep so the timing isolates CellTree expansion.
        for focal in &focals {
            let _ = engine.run(Algorithm::Pcta, focal, k);
        }
        group.throughput(Throughput::Elements(focals.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("pcta_single_query", workers),
            &workers,
            |b, _| {
                b.iter(|| {
                    focals
                        .iter()
                        .map(|f| engine.run(Algorithm::Pcta, f, k))
                        .collect::<Vec<_>>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
