//! Criterion bench for Figure 23 (Appendix D): aggregate R-tree construction
//! cost as the dataset grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kspr_spatial::{AggregateRTree, Record};

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig23_index_build");
    group.sample_size(10);
    for n in [1_000usize, 5_000, 20_000] {
        let raw = kspr_datagen::generate(kspr_datagen::Distribution::Independent, n, 4, 26);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("bulk_load", n), &n, |b, _| {
            b.iter(|| {
                let records = Record::from_raw(raw.clone());
                AggregateRTree::bulk_load(records, 32)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_build);
criterion_main!(benches);
