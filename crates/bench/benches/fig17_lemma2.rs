//! Criterion bench for Figure 17: the effect of eliminating inconsequential
//! halfspaces (Lemma 2) from the LP feasibility tests.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kspr::{Algorithm, KsprConfig};
use kspr_bench::Workload;
use kspr_datagen::Distribution;

fn bench_lemma2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig17_lemma2");
    group.sample_size(10);
    let k = 5usize;
    let w = Workload::synthetic(Distribution::Independent, 800, 4, k, 17);
    let focal = w.focals(1).remove(0);
    for (label, use_lemma2) in [("with_lemma2", true), ("without_lemma2", false)] {
        let config = KsprConfig {
            use_lemma2,
            ..KsprConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("LP-CTA", label), &label, |b, _| {
            b.iter(|| kspr::run(Algorithm::LpCta, &w.dataset, &focal, k, &config))
        });
    }
    // Companion ablation: the witness-point reuse of Section 4.3.2.
    for (label, use_witness) in [("with_witness", true), ("without_witness", false)] {
        let config = KsprConfig {
            use_witness,
            ..KsprConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("LP-CTA", label), &label, |b, _| {
            b.iter(|| kspr::run(Algorithm::LpCta, &w.dataset, &focal, k, &config))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lemma2);
criterion_main!(benches);
