//! Criterion bench (beyond the paper): dynamic update throughput.
//!
//! Compares one (insert + `run_batch`, delete + `run_batch`) cycle through
//! the two maintenance strategies:
//!
//! * `incremental` — a long-lived `QueryEngine` whose R-tree and cached
//!   shared prep (k-skyband + dominance graph) are patched in place by
//!   `insert` / `delete`;
//! * `rebuild` — every update bulk-reloads the dataset index and constructs
//!   a fresh engine, whose first batch recomputes the shared prep.
//!
//! The query mix is the "negative lookup" steady state (deeply dominated
//! focal records), so the measured gap is the maintenance cost itself:
//! O(log n + band) per cycle versus O(n log n + n·k).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kspr::{Algorithm, Dataset, KsprConfig, QueryEngine};
use kspr_bench::Workload;
use kspr_datagen::Distribution;

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_throughput");
    group.sample_size(10);
    let k = 10usize;
    let alg = Algorithm::LpCta;
    for n in [1_000usize, 4_000] {
        let w = Workload::synthetic(Distribution::Independent, n, 4, k, 61);
        let focals = w.lookup_focals(4);
        let config = KsprConfig::default();
        let record = vec![0.42; 4];
        group.throughput(Throughput::Elements(2)); // two updates per cycle
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            let mut engine = QueryEngine::new(&w.dataset, config.clone());
            engine.run_batch(alg, &focals, k); // prime the prep cache
            b.iter(|| {
                let id = engine.insert(record.clone());
                let with = engine.run_batch(alg, &focals, k);
                engine.delete(id);
                let without = engine.run_batch(alg, &focals, k);
                (with, without)
            })
        });
        group.bench_with_input(BenchmarkId::new("rebuild", n), &n, |b, _| {
            b.iter(|| {
                let mut raw = w.raw.clone();
                raw.push(record.clone());
                let engine = QueryEngine::new(&Dataset::new(raw), config.clone());
                let with = engine.run_batch(alg, &focals, k);
                let engine = QueryEngine::new(&Dataset::new(w.raw.clone()), config.clone());
                let without = engine.run_batch(alg, &focals, k);
                (with, without)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
