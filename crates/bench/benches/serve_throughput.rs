//! Criterion bench (beyond the paper): sharded batch serving.
//!
//! Measures the same steady-state query batch answered by a single
//! `QueryEngine` over the full dataset and by the `kspr-serve`
//! `ShardedEngine` at increasing shard counts, for the two serving mixes of
//! the `serve` experiment:
//!
//! * **steady_state** — deeply dominated focal records (the common case for
//!   uniformly drawn focals).  The per-query cost is the Section 3.1
//!   preprocessing scan, which the sharded side shrinks from all `n` records
//!   to the merged union of per-shard k-skybands, so it wins 3–5× even on
//!   one core.
//! * **competitive** — skyband-adjacent focals whose CellTree arrangement
//!   work dominates and is identical on both sides; the sharded gain here is
//!   small (~1.1×) and comes only from the cheaper preprocessing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kspr::{Algorithm, KsprConfig, QueryEngine};
use kspr_bench::Workload;
use kspr_datagen::Distribution;
use kspr_serve::ShardedEngine;

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    let k = 10usize;
    let w = Workload::synthetic(Distribution::Independent, 2_000, 4, k, 77);
    let config = KsprConfig::default();

    let mixes = [
        ("steady_state", w.lookup_focals(8)),
        ("competitive", w.focals(8)),
    ];
    for (mix, focals) in &mixes {
        group.throughput(Throughput::Elements(focals.len() as u64));

        let single = QueryEngine::new(&w.dataset, config.clone());
        single.run_batch(Algorithm::LpCta, focals, k); // warm the prep cache
        group.bench_with_input(
            BenchmarkId::new(format!("{mix}/single_engine"), 1),
            &1,
            |b, _| b.iter(|| single.run_batch(Algorithm::LpCta, focals, k)),
        );

        for shards in [2usize, 4, 8] {
            let sharded = ShardedEngine::new(w.raw.clone(), config.clone().with_shards(shards));
            sharded.run_batch(Algorithm::LpCta, focals, k); // warm the merge
            group.bench_with_input(
                BenchmarkId::new(format!("{mix}/sharded"), shards),
                &shards,
                |b, _| b.iter(|| sharded.run_batch(Algorithm::LpCta, focals, k)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
