//! Criterion bench (beyond the paper): batched query serving.
//!
//! Compares a sequential per-query loop against `QueryEngine::run_batch`,
//! which runs the same focal set with parallel workers and shared
//! preprocessing.  On a single-core machine the two are expected to be close
//! (batch mode still saves the shared k-skyband / dominance-graph work); with
//! four or more cores the batch side should win by well over 1.5×.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kspr::{Algorithm, KsprConfig, QueryEngine};
use kspr_bench::Workload;
use kspr_datagen::Distribution;

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_throughput");
    group.sample_size(10);
    let k = 5usize;
    for queries in [4usize, 16] {
        let w = Workload::synthetic(Distribution::Independent, 800, 4, k, 33);
        let focals = w.focals(queries);
        let config = KsprConfig::default();
        let engine = QueryEngine::new(&w.dataset, config.clone());
        group.throughput(Throughput::Elements(focals.len() as u64));
        group.bench_with_input(BenchmarkId::new("sequential", queries), &queries, |b, _| {
            b.iter(|| {
                focals
                    .iter()
                    .map(|f| engine.run(Algorithm::LpCta, f, k))
                    .collect::<Vec<_>>()
            })
        });
        group.bench_with_input(BenchmarkId::new("run_batch", queries), &queries, |b, _| {
            b.iter(|| engine.run_batch(Algorithm::LpCta, &focals, k))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
