//! Criterion bench for Figure 14: effect of the data distribution
//! (IND / COR / ANTI) on LP-CTA.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kspr::{Algorithm, KsprConfig};
use kspr_bench::Workload;
use kspr_datagen::Distribution;

fn bench_distribution(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_distribution");
    group.sample_size(10);
    let k = 5usize;
    for dist in Distribution::all() {
        let w = Workload::synthetic(dist, 800, 4, k, 16);
        let focal = w.focals(1).remove(0);
        let config = KsprConfig::default();
        group.bench_with_input(BenchmarkId::new("LP-CTA", dist.label()), &dist, |b, _| {
            b.iter(|| kspr::run(Algorithm::LpCta, &w.dataset, &focal, k, &config))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distribution);
criterion_main!(benches);
