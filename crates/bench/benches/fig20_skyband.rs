//! Criterion bench for Figure 20 (Appendix B): P-CTA versus the
//! k-skyband + CTA approach.

use criterion::{criterion_group, criterion_main, Criterion};
use kspr::{Algorithm, KsprConfig};
use kspr_bench::Workload;
use kspr_datagen::Distribution;

fn bench_skyband(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig20_skyband");
    group.sample_size(10);
    let k = 5usize;
    let w = Workload::synthetic(Distribution::Independent, 800, 4, k, 24);
    let focal = w.focals(1).remove(0);
    let config = KsprConfig::default();
    for alg in [Algorithm::Pcta, Algorithm::KSkyband] {
        group.bench_function(alg.label(), |b| {
            b.iter(|| kspr::run(alg, &w.dataset, &focal, k, &config))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_skyband);
criterion_main!(benches);
