//! # kspr-durable — the durability layer of the kSPR serving stack
//!
//! The serving front-end (`kspr-serve`) holds everything in memory: the
//! sharded dataset, the shard routing tables, and the standing-query
//! registry.  This crate makes that state survive the process:
//!
//! * [`WalWriter`] / [`read_wal`] — an **append-only update WAL**.  Every
//!   applied update (insert / delete) and registry change (subscribe /
//!   unsubscribe) is appended as a CRC-framed [`WalRecord`];
//!   [`WalWriter::commit`] flushes and fsyncs a whole batch of appends at
//!   once (fsync *batching*: one durable write per drained dispatcher
//!   batch, not per record).  Reading tolerates a torn tail — a crash mid
//!   append leaves a truncated or CRC-failing final frame, and recovery
//!   replays exactly the prefix of records that were fully committed.
//! * [`SnapshotState`] — an **epoch snapshot** of the full logical serving
//!   state: dataset slots (live values, tombstones, compacted ids) with
//!   their shard placement, the insert-routing cursor, per-shard dataset
//!   epochs, and every standing-query registration with the registry's id
//!   counter.  Snapshots are written atomically (temp file + rename) and
//!   CRC-checked on read.
//! * [`DurableStore`] — the directory manager tying the two together: a
//!   snapshot plus the WAL tail since that snapshot.  `recover` hands back
//!   the snapshot and the committed WAL prefix; installing a fresh snapshot
//!   truncates the WAL, bounding replay work.
//!
//! The layer is deliberately *logical*: it persists the record values, id
//! assignments and registrations — not R-tree pages or cell-tree nodes.
//! Query results are deterministic functions of the live record set, so a
//! server rebuilt from snapshot + WAL tail answers bit-identically to one
//! that never went down (the recovery proptest in `kspr-repro` asserts
//! exactly this against a never-crashed twin).

pub mod crc;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use crc::crc32;
pub use snapshot::{Registration, SlotState, SnapshotState, SNAPSHOT_VERSION};
pub use store::{DurableStore, Recovered};
pub use wal::{read_wal, WalRecord, WalWriter, WAL_VERSION};

/// Why a durable state could not be loaded.
#[derive(Debug)]
pub enum DurableError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The snapshot file is missing — nothing to recover from.
    MissingSnapshot(std::path::PathBuf),
    /// The snapshot (not the WAL tail — a torn tail is expected after a
    /// crash and silently truncated) failed its integrity checks.
    CorruptSnapshot(&'static str),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(err) => write!(f, "durable store I/O failed: {err}"),
            DurableError::MissingSnapshot(path) => {
                write!(f, "no snapshot at {}", path.display())
            }
            DurableError::CorruptSnapshot(what) => {
                write!(f, "corrupt snapshot: {what}")
            }
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DurableError {
    fn from(err: std::io::Error) -> Self {
        DurableError::Io(err)
    }
}
