//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), the frame checksum of the
//! WAL and snapshot formats.
//!
//! Implemented as a compile-time 256-entry table — the workspace builds
//! offline, so no external checksum crate is available, and the WAL appends
//! a few dozen bytes per record: a byte-at-a-time table lookup is far from
//! the bottleneck (the fsync is).

/// The byte-indexed remainder table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (IEEE: reflected, init and xor-out `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"kspr wal frame payload".to_vec();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at {byte}:{bit}");
            }
        }
    }
}
