//! Epoch snapshots of the full logical serving state.
//!
//! A snapshot captures everything needed to rebuild a [`kspr`] sharded
//! engine and a standing-query registry that answer bit-identically to the
//! live ones: every record slot (live values, tombstoned values, or
//! compacted-away) with its shard placement, the insert-routing cursor,
//! per-shard dataset epochs (restored through the core's
//! `DatasetStore::restore_epoch` hook so version counters survive too), and
//! every standing-query registration plus the registry's id counter.
//!
//! The file format is a single CRC-guarded blob:
//! `[magic "KSPRSNAP"][version u32][body_len u64][crc u32][body]`, written
//! atomically (temp file in the same directory, fsync, rename) so a crash
//! mid-snapshot leaves the previous snapshot intact.

use crate::crc::crc32;
use crate::wal::{decode_algorithm, encode_algorithm, get_u64, get_u8, put_u64};
use crate::DurableError;
use kspr::Algorithm;
use kspr_spatial::{decode_row, encode_row};
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

/// Snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"KSPRSNAP";

/// One persisted standing-query registration.
#[derive(Debug, Clone, PartialEq)]
pub struct Registration {
    /// The registry id (dense, never reused).
    pub id: u64,
    /// The standing query's algorithm.
    pub algorithm: Algorithm,
    /// The standing query's focal record.
    pub focal: Vec<f64>,
    /// The standing query's `k`.
    pub k: usize,
}

/// The durable state of one global record slot.
#[derive(Debug, Clone, PartialEq)]
pub enum SlotState {
    /// A live record: its owning shard and attribute values.
    Live {
        /// The owning shard index.
        shard: u32,
        /// The record's attribute values.
        values: Vec<f64>,
    },
    /// A deleted record whose storage slot still exists in its shard (the
    /// values are kept so the rebuild can re-create the slot and tombstone
    /// it, reproducing local id assignment and tombstone accounting).
    Tombstone {
        /// The shard whose local slot holds the tombstone.
        shard: u32,
        /// The values the slot held before deletion.
        values: Vec<f64>,
    },
    /// A deleted record whose storage was compacted away; the global id
    /// stays allocated but routes nowhere.
    Compacted,
}

/// The full logical serving state at one moment.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotState {
    /// The dataset arity.
    pub dim: usize,
    /// Number of shards (must match the recovering configuration).
    pub num_shards: usize,
    /// The round-robin insert cursor.
    pub next_shard: usize,
    /// Per-shard dataset epochs (`0` for a shard that never held a record).
    pub shard_epochs: Vec<u64>,
    /// Every global record slot, in id order.
    pub slots: Vec<SlotState>,
    /// The standing-query registry's next id.
    pub monitor_next_id: u64,
    /// Every registered standing query, in id order.
    pub registrations: Vec<Registration>,
}

const SLOT_LIVE: u8 = 1;
const SLOT_TOMBSTONE: u8 = 2;
const SLOT_COMPACTED: u8 = 3;

impl SnapshotState {
    /// Encodes the body (everything after the header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.dim as u64);
        put_u64(&mut out, self.num_shards as u64);
        put_u64(&mut out, self.next_shard as u64);
        put_u64(&mut out, self.shard_epochs.len() as u64);
        for &epoch in &self.shard_epochs {
            put_u64(&mut out, epoch);
        }
        put_u64(&mut out, self.slots.len() as u64);
        for slot in &self.slots {
            match slot {
                SlotState::Live { shard, values } => {
                    out.push(SLOT_LIVE);
                    out.extend_from_slice(&shard.to_le_bytes());
                    encode_row(values, &mut out);
                }
                SlotState::Tombstone { shard, values } => {
                    out.push(SLOT_TOMBSTONE);
                    out.extend_from_slice(&shard.to_le_bytes());
                    encode_row(values, &mut out);
                }
                SlotState::Compacted => out.push(SLOT_COMPACTED),
            }
        }
        put_u64(&mut out, self.monitor_next_id);
        put_u64(&mut out, self.registrations.len() as u64);
        for reg in &self.registrations {
            put_u64(&mut out, reg.id);
            out.push(encode_algorithm(reg.algorithm));
            put_u64(&mut out, reg.k as u64);
            encode_row(&reg.focal, &mut out);
        }
        out
    }

    /// Decodes a body produced by [`SnapshotState::encode`].
    pub fn decode(body: &[u8]) -> Result<Self, DurableError> {
        let corrupt = DurableError::CorruptSnapshot("truncated body");
        let mut at = 0usize;
        let dim = get_u64(body, &mut at).ok_or(corrupt)? as usize;
        let num_shards =
            get_u64(body, &mut at).ok_or(DurableError::CorruptSnapshot("truncated body"))? as usize;
        let next_shard =
            get_u64(body, &mut at).ok_or(DurableError::CorruptSnapshot("truncated body"))? as usize;
        let n_epochs =
            get_u64(body, &mut at).ok_or(DurableError::CorruptSnapshot("truncated body"))? as usize;
        if n_epochs > body.len() {
            return Err(DurableError::CorruptSnapshot("implausible epoch count"));
        }
        let mut shard_epochs = Vec::with_capacity(n_epochs);
        for _ in 0..n_epochs {
            shard_epochs.push(
                get_u64(body, &mut at).ok_or(DurableError::CorruptSnapshot("truncated epochs"))?,
            );
        }
        let n_slots =
            get_u64(body, &mut at).ok_or(DurableError::CorruptSnapshot("truncated body"))? as usize;
        if n_slots > body.len() {
            return Err(DurableError::CorruptSnapshot("implausible slot count"));
        }
        let mut slots = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            let tag =
                get_u8(body, &mut at).ok_or(DurableError::CorruptSnapshot("truncated slots"))?;
            let slot = match tag {
                SLOT_LIVE | SLOT_TOMBSTONE => {
                    let end = at
                        .checked_add(4)
                        .ok_or(DurableError::CorruptSnapshot("truncated slots"))?;
                    let shard = u32::from_le_bytes(
                        body.get(at..end)
                            .ok_or(DurableError::CorruptSnapshot("truncated slots"))?
                            .try_into()
                            .unwrap(),
                    );
                    at = end;
                    let values = decode_row(body, &mut at)
                        .ok_or(DurableError::CorruptSnapshot("truncated slot row"))?;
                    if tag == SLOT_LIVE {
                        SlotState::Live { shard, values }
                    } else {
                        SlotState::Tombstone { shard, values }
                    }
                }
                SLOT_COMPACTED => SlotState::Compacted,
                _ => return Err(DurableError::CorruptSnapshot("unknown slot tag")),
            };
            slots.push(slot);
        }
        let monitor_next_id =
            get_u64(body, &mut at).ok_or(DurableError::CorruptSnapshot("truncated registry"))?;
        let n_regs = get_u64(body, &mut at)
            .ok_or(DurableError::CorruptSnapshot("truncated registry"))?
            as usize;
        if n_regs > body.len() {
            return Err(DurableError::CorruptSnapshot(
                "implausible registration count",
            ));
        }
        let mut registrations = Vec::with_capacity(n_regs);
        for _ in 0..n_regs {
            let id = get_u64(body, &mut at)
                .ok_or(DurableError::CorruptSnapshot("truncated registration"))?;
            let algorithm = decode_algorithm(
                get_u8(body, &mut at)
                    .ok_or(DurableError::CorruptSnapshot("truncated registration"))?,
            )
            .ok_or(DurableError::CorruptSnapshot("unknown algorithm tag"))?;
            let k = get_u64(body, &mut at)
                .ok_or(DurableError::CorruptSnapshot("truncated registration"))?
                as usize;
            let focal = decode_row(body, &mut at)
                .ok_or(DurableError::CorruptSnapshot("truncated registration row"))?;
            registrations.push(Registration {
                id,
                algorithm,
                focal,
                k,
            });
        }
        if at != body.len() {
            return Err(DurableError::CorruptSnapshot("trailing bytes"));
        }
        Ok(Self {
            dim,
            num_shards,
            next_shard,
            shard_epochs,
            slots,
            monitor_next_id,
            registrations,
        })
    }

    /// Writes the snapshot atomically to `path`: temp file in the same
    /// directory, flushed and fsynced, then renamed over the target.  A
    /// crash at any point leaves either the old snapshot or the new one,
    /// never a torn file.
    pub fn write_atomic(&self, path: &Path) -> std::io::Result<()> {
        let body = self.encode();
        let mut blob = Vec::with_capacity(body.len() + 24);
        blob.extend_from_slice(MAGIC);
        blob.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        blob.extend_from_slice(&(body.len() as u64).to_le_bytes());
        blob.extend_from_slice(&crc32(&body).to_le_bytes());
        blob.extend_from_slice(&body);

        let tmp = path.with_extension("tmp");
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&blob)?;
            file.flush()?;
            file.sync_data()?;
        }
        std::fs::rename(&tmp, path)?;
        // Make the rename durable too (best effort — some filesystems do
        // not support fsync on directories).
        if let Some(dir) = path.parent() {
            if let Ok(dir) = File::open(dir) {
                let _ = dir.sync_data();
            }
        }
        Ok(())
    }

    /// Reads and verifies a snapshot written by
    /// [`SnapshotState::write_atomic`].
    pub fn read(path: &Path) -> Result<Self, DurableError> {
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut file) => {
                file.read_to_end(&mut bytes)?;
            }
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
                return Err(DurableError::MissingSnapshot(path.to_path_buf()));
            }
            Err(err) => return Err(err.into()),
        }
        if bytes.len() < 24 || &bytes[..8] != MAGIC {
            return Err(DurableError::CorruptSnapshot("bad magic"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != SNAPSHOT_VERSION {
            return Err(DurableError::CorruptSnapshot("unknown version"));
        }
        let body_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
        let body = bytes
            .get(24..24 + body_len)
            .ok_or(DurableError::CorruptSnapshot("truncated body"))?;
        if bytes.len() != 24 + body_len {
            return Err(DurableError::CorruptSnapshot("trailing bytes"));
        }
        if crc32(body) != crc {
            return Err(DurableError::CorruptSnapshot("checksum mismatch"));
        }
        Self::decode(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotState {
        SnapshotState {
            dim: 3,
            num_shards: 2,
            next_shard: 1,
            shard_epochs: vec![4, 0],
            slots: vec![
                SlotState::Live {
                    shard: 0,
                    values: vec![0.1, 0.2, 0.3],
                },
                SlotState::Tombstone {
                    shard: 1,
                    values: vec![0.9, 0.8, 0.7],
                },
                SlotState::Compacted,
                SlotState::Live {
                    shard: 1,
                    values: vec![0.5, 0.5, 0.5],
                },
            ],
            monitor_next_id: 6,
            registrations: vec![
                Registration {
                    id: 2,
                    algorithm: Algorithm::LpCta,
                    focal: vec![0.4, 0.4, 0.4],
                    k: 3,
                },
                Registration {
                    id: 5,
                    algorithm: Algorithm::KSkyband,
                    focal: vec![0.6, 0.3, 0.2],
                    k: 1,
                },
            ],
        }
    }

    #[test]
    fn body_codec_round_trips() {
        let state = sample();
        let decoded = SnapshotState::decode(&state.encode()).expect("decodes");
        assert_eq!(decoded, state);
    }

    #[test]
    fn file_round_trip_and_corruption_detection() {
        let dir = std::env::temp_dir().join(format!("kspr-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");
        let state = sample();
        state.write_atomic(&path).unwrap();
        assert_eq!(SnapshotState::read(&path).unwrap(), state);

        // Any corrupted byte must be caught by magic/version/CRC checks.
        let blob = std::fs::read(&path).unwrap();
        for at in [0usize, 9, 21, 30, blob.len() - 1] {
            let mut bad = blob.clone();
            bad[at] ^= 0x10;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                SnapshotState::read(&path).is_err(),
                "flip at {at} must not read back"
            );
        }
        // Truncation is caught too.
        std::fs::write(&path, &blob[..blob.len() / 2]).unwrap();
        assert!(SnapshotState::read(&path).is_err());
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            SnapshotState::read(&path),
            Err(DurableError::MissingSnapshot(_))
        ));
    }
}
