//! The append-only update WAL.
//!
//! One file of consecutive frames, each `[len: u32 LE][crc: u32 LE][payload]`
//! where `crc` covers the payload.  The payload is a versioned, tagged
//! [`WalRecord`] encoding.  Appends are buffered; [`WalWriter::commit`]
//! writes and (by policy) fsyncs everything appended since the last commit —
//! the serving dispatcher appends every update of a drained batch and
//! commits once, so a burst of updates costs one durable write.
//!
//! A crash can tear the final frame (short write) or corrupt it (partial
//! page).  [`read_wal`] therefore replays the longest *valid prefix*: it
//! stops at the first truncated or CRC-failing frame and reports whether the
//! file ended cleanly.  Everything before the tear was acknowledged only
//! after an fsynced commit, so the valid prefix is exactly the durable
//! history.

use crate::crc::crc32;
use kspr::{Algorithm, RecordId};
use kspr_spatial::{decode_row, encode_row};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// Version byte leading every WAL payload.
pub const WAL_VERSION: u8 = 1;

/// Upper bound on a single frame's payload, guarding the reader against
/// interpreting garbage as a multi-gigabyte length.
const MAX_PAYLOAD: usize = 1 << 24;

/// One durable operation.  `Insert` records the id the engine assigned so
/// replay can assert the reconstruction allocates identically; `Subscribe`
/// likewise records the registry id.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A record was inserted under `id`.
    Insert {
        /// The global id the sharded engine assigned.
        id: RecordId,
        /// The inserted attribute row.
        values: Vec<f64>,
    },
    /// The record with global `id` was deleted (tombstoned).
    Delete {
        /// The global id of the removed record.
        id: RecordId,
    },
    /// A standing query was registered under `id`.
    Subscribe {
        /// The registry id the monitor assigned.
        id: u64,
        /// The standing query's algorithm.
        algorithm: Algorithm,
        /// The standing query's focal record.
        focal: Vec<f64>,
        /// The standing query's `k`.
        k: usize,
    },
    /// The standing query with registry `id` was unregistered.
    Unsubscribe {
        /// The registry id of the removed standing query.
        id: u64,
    },
}

const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_SUBSCRIBE: u8 = 3;
const TAG_UNSUBSCRIBE: u8 = 4;

pub(crate) fn encode_algorithm(algorithm: Algorithm) -> u8 {
    match algorithm {
        Algorithm::Cta => 0,
        Algorithm::Pcta => 1,
        Algorithm::LpCta => 2,
        Algorithm::KSkyband => 3,
        Algorithm::Rtopk => 4,
        Algorithm::IMaxRank => 5,
    }
}

pub(crate) fn decode_algorithm(tag: u8) -> Option<Algorithm> {
    Some(match tag {
        0 => Algorithm::Cta,
        1 => Algorithm::Pcta,
        2 => Algorithm::LpCta,
        3 => Algorithm::KSkyband,
        4 => Algorithm::Rtopk,
        5 => Algorithm::IMaxRank,
        _ => return None,
    })
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn get_u64(bytes: &[u8], at: &mut usize) -> Option<u64> {
    let end = at.checked_add(8)?;
    let v = u64::from_le_bytes(bytes.get(*at..end)?.try_into().ok()?);
    *at = end;
    Some(v)
}

pub(crate) fn get_u8(bytes: &[u8], at: &mut usize) -> Option<u8> {
    let v = *bytes.get(*at)?;
    *at += 1;
    Some(v)
}

impl WalRecord {
    /// Encodes the payload (version byte + tag + fields).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![WAL_VERSION];
        match self {
            WalRecord::Insert { id, values } => {
                out.push(TAG_INSERT);
                put_u64(&mut out, *id as u64);
                encode_row(values, &mut out);
            }
            WalRecord::Delete { id } => {
                out.push(TAG_DELETE);
                put_u64(&mut out, *id as u64);
            }
            WalRecord::Subscribe {
                id,
                algorithm,
                focal,
                k,
            } => {
                out.push(TAG_SUBSCRIBE);
                put_u64(&mut out, *id);
                out.push(encode_algorithm(*algorithm));
                put_u64(&mut out, *k as u64);
                encode_row(focal, &mut out);
            }
            WalRecord::Unsubscribe { id } => {
                out.push(TAG_UNSUBSCRIBE);
                put_u64(&mut out, *id);
            }
        }
        out
    }

    /// Decodes one payload; `None` on any malformation (the reader treats
    /// that as the torn tail).
    pub fn decode(payload: &[u8]) -> Option<Self> {
        let mut at = 0usize;
        if get_u8(payload, &mut at)? != WAL_VERSION {
            return None;
        }
        let record = match get_u8(payload, &mut at)? {
            TAG_INSERT => WalRecord::Insert {
                id: get_u64(payload, &mut at)? as RecordId,
                values: decode_row(payload, &mut at)?,
            },
            TAG_DELETE => WalRecord::Delete {
                id: get_u64(payload, &mut at)? as RecordId,
            },
            TAG_SUBSCRIBE => {
                let id = get_u64(payload, &mut at)?;
                let algorithm = decode_algorithm(get_u8(payload, &mut at)?)?;
                let k = get_u64(payload, &mut at)? as usize;
                let focal = decode_row(payload, &mut at)?;
                WalRecord::Subscribe {
                    id,
                    algorithm,
                    focal,
                    k,
                }
            }
            TAG_UNSUBSCRIBE => WalRecord::Unsubscribe {
                id: get_u64(payload, &mut at)?,
            },
            _ => return None,
        };
        (at == payload.len()).then_some(record)
    }
}

/// The appending half of the WAL.
///
/// `append` only stages a record in memory; `commit` makes everything staged
/// durable in one write (+ fsync unless disabled).  The counters let serving
/// stats report the batching ratio, and the byte/latency counters feed the
/// serving layer's `wal_bytes` gauge and WAL-commit latency histogram.
pub struct WalWriter {
    file: File,
    staged: Vec<u8>,
    staged_records: u64,
    sync_on_commit: bool,
    records: u64,
    commits: u64,
    syncs: u64,
    bytes: u64,
    commit_nanos: u64,
    last_commit_nanos: u64,
}

impl WalWriter {
    /// Opens (creating if needed) the WAL at `path` for appending.
    /// `sync_on_commit = false` trades durability of the last commits for
    /// speed (tests, benchmarks); production serving keeps it on.
    pub fn open(path: &Path, sync_on_commit: bool) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        // Byte accounting starts from the on-disk size so `bytes()` reports
        // the WAL's actual growth, not just this writer's appends.
        let bytes = file.metadata()?.len();
        Ok(Self {
            file,
            staged: Vec::new(),
            staged_records: 0,
            sync_on_commit,
            records: 0,
            commits: 0,
            syncs: 0,
            bytes,
            commit_nanos: 0,
            last_commit_nanos: 0,
        })
    }

    /// Stages one record (frame = length + CRC + payload).  Not durable
    /// until the next [`WalWriter::commit`].
    pub fn append(&mut self, record: &WalRecord) {
        let payload = record.encode();
        self.staged
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.staged
            .extend_from_slice(&crc32(&payload).to_le_bytes());
        self.staged.extend_from_slice(&payload);
        self.staged_records += 1;
    }

    /// Writes and fsyncs everything staged since the last commit (one
    /// durable write per batch — the fsync batching).  A no-op when nothing
    /// is staged.
    pub fn commit(&mut self) -> std::io::Result<()> {
        if self.staged.is_empty() {
            return Ok(());
        }
        let clock = std::time::Instant::now();
        self.file.write_all(&self.staged)?;
        self.file.flush()?;
        if self.sync_on_commit {
            self.file.sync_data()?;
            self.syncs += 1;
        }
        self.last_commit_nanos = u64::try_from(clock.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.commit_nanos = self.commit_nanos.saturating_add(self.last_commit_nanos);
        self.bytes += self.staged.len() as u64;
        self.records += self.staged_records;
        self.commits += 1;
        self.staged.clear();
        self.staged_records = 0;
        Ok(())
    }

    /// Records committed over this writer's lifetime.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Commits performed (each covering >= 1 record).
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// fsyncs issued (== commits when `sync_on_commit`).
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Committed size of the WAL file in bytes: its size when this writer
    /// opened it plus every byte committed since.  Staged-but-uncommitted
    /// records are not counted.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total wall-clock nanoseconds spent inside [`WalWriter::commit`]'s
    /// write + flush + fsync sequence.
    pub fn commit_nanos(&self) -> u64 {
        self.commit_nanos
    }

    /// Wall-clock nanoseconds of the most recent non-empty commit.
    pub fn last_commit_nanos(&self) -> u64 {
        self.last_commit_nanos
    }
}

/// Reads the longest valid record prefix of the WAL at `path`.
///
/// Returns the records and whether the file ended cleanly (`false`: a torn
/// or corrupt tail was discarded — the expected state after a crash).  A
/// missing file reads as an empty, clean WAL.
pub fn read_wal(path: &Path) -> std::io::Result<(Vec<WalRecord>, bool)> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut file) => {
            file.read_to_end(&mut bytes)?;
        }
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), true)),
        Err(err) => return Err(err),
    }
    let mut records = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        let Some(header) = bytes.get(at..at + 8) else {
            return Ok((records, false));
        };
        let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(header[4..].try_into().unwrap());
        if len > MAX_PAYLOAD {
            return Ok((records, false));
        }
        let Some(payload) = bytes.get(at + 8..at + 8 + len) else {
            return Ok((records, false));
        };
        if crc32(payload) != crc {
            return Ok((records, false));
        }
        let Some(record) = WalRecord::decode(payload) else {
            return Ok((records, false));
        };
        records.push(record);
        at += 8 + len;
    }
    Ok((records, true))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert {
                id: 0,
                values: vec![0.25, 0.5, 0.75],
            },
            WalRecord::Subscribe {
                id: 3,
                algorithm: Algorithm::Pcta,
                focal: vec![0.1, 0.9, 0.4],
                k: 2,
            },
            WalRecord::Delete { id: 0 },
            WalRecord::Unsubscribe { id: 3 },
            WalRecord::Insert {
                id: 1,
                values: vec![1e-9, 123.5, -0.0],
            },
        ]
    }

    #[test]
    fn record_codec_round_trips_every_variant() {
        for record in sample_records() {
            let payload = record.encode();
            assert_eq!(WalRecord::decode(&payload).as_ref(), Some(&record));
            // Trailing garbage is a malformation, not silently ignored.
            let mut longer = payload.clone();
            longer.push(0);
            assert_eq!(WalRecord::decode(&longer), None);
        }
    }

    #[test]
    fn write_commit_read_round_trips() {
        let dir = std::env::temp_dir().join(format!("kspr-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.wal");
        let _ = std::fs::remove_file(&path);
        let mut writer = WalWriter::open(&path, false).unwrap();
        let records = sample_records();
        // Two records per commit: fsync batching.
        for chunk in records.chunks(2) {
            for r in chunk {
                writer.append(r);
            }
            writer.commit().unwrap();
        }
        assert_eq!(writer.records(), records.len() as u64);
        assert_eq!(writer.commits(), 3);
        let (read, clean) = read_wal(&path).unwrap();
        assert!(clean);
        assert_eq!(read, records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn uncommitted_appends_are_not_durable() {
        let dir = std::env::temp_dir().join(format!("kspr-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("staged.wal");
        let _ = std::fs::remove_file(&path);
        let mut writer = WalWriter::open(&path, false).unwrap();
        writer.append(&WalRecord::Delete { id: 9 });
        writer.commit().unwrap();
        writer.append(&WalRecord::Delete { id: 10 });
        // No commit: the second record must not be visible.
        let (read, clean) = read_wal(&path).unwrap();
        assert!(clean);
        assert_eq!(read, vec![WalRecord::Delete { id: 9 }]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_and_corrupt_tails_replay_the_valid_prefix() {
        let dir = std::env::temp_dir().join(format!("kspr-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.wal");
        let records = sample_records();
        // Frame boundaries, for cutting at every possible tear point.
        let mut frames = Vec::new();
        let mut whole = Vec::new();
        for r in &records {
            let payload = r.encode();
            let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
            frame.extend_from_slice(&crc32(&payload).to_le_bytes());
            frame.extend_from_slice(&payload);
            whole.extend_from_slice(&frame);
            frames.push(frame.len());
        }
        // Cut inside every frame: the reader must return exactly the records
        // before the torn one and flag the tail.
        let mut boundary = 0usize;
        for (i, flen) in frames.iter().enumerate() {
            for cut in [boundary + 1, boundary + flen / 2, boundary + flen - 1] {
                std::fs::write(&path, &whole[..cut]).unwrap();
                let (read, clean) = read_wal(&path).unwrap();
                assert!(!clean, "cut at {cut} must flag the tail");
                assert_eq!(read, records[..i], "cut at {cut}");
            }
            boundary += flen;
        }
        // A bit flip in the last frame's payload drops exactly that record.
        let mut corrupt = whole.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        std::fs::write(&path, &corrupt).unwrap();
        let (read, clean) = read_wal(&path).unwrap();
        assert!(!clean);
        assert_eq!(read, records[..records.len() - 1]);
        // The intact file replays fully.
        std::fs::write(&path, &whole).unwrap();
        let (read, clean) = read_wal(&path).unwrap();
        assert!(clean);
        assert_eq!(read, records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn byte_and_latency_counters_track_commits() {
        let dir = std::env::temp_dir().join(format!("kspr-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("counters.wal");
        let _ = std::fs::remove_file(&path);

        let mut writer = WalWriter::open(&path, true).unwrap();
        assert_eq!(writer.bytes(), 0);
        writer.append(&WalRecord::Delete { id: 1 });
        assert_eq!(writer.bytes(), 0, "staging does not count as growth");
        writer.commit().unwrap();
        let after_first = writer.bytes();
        assert_eq!(after_first, std::fs::metadata(&path).unwrap().len());
        assert!(writer.last_commit_nanos() > 0);
        assert!(writer.commit_nanos() >= writer.last_commit_nanos());

        // An empty commit changes nothing.
        let nanos = writer.commit_nanos();
        writer.commit().unwrap();
        assert_eq!(writer.bytes(), after_first);
        assert_eq!(writer.commit_nanos(), nanos);

        // A reopened writer resumes byte accounting from the on-disk size.
        drop(writer);
        let mut writer = WalWriter::open(&path, true).unwrap();
        assert_eq!(writer.bytes(), after_first);
        writer.append(&WalRecord::Delete { id: 2 });
        writer.commit().unwrap();
        assert_eq!(writer.bytes(), std::fs::metadata(&path).unwrap().len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_wal_reads_empty_and_clean() {
        let path = std::env::temp_dir().join("kspr-wal-never-created.wal");
        let _ = std::fs::remove_file(&path);
        let (read, clean) = read_wal(&path).unwrap();
        assert!(read.is_empty());
        assert!(clean);
    }
}
