//! The on-disk layout tying snapshot and WAL together.
//!
//! A durable directory holds at most two files: `state.snap` (the last
//! epoch snapshot) and `updates.wal` (every committed update since that
//! snapshot).  Recovery loads the snapshot, replays the committed WAL
//! prefix, and — once the rebuilt server is live — installs a fresh
//! snapshot and truncates the WAL so the next recovery replays nothing.

use crate::snapshot::SnapshotState;
use crate::wal::{read_wal, WalRecord, WalWriter};
use crate::DurableError;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A durable state directory: one snapshot plus the WAL tail since it.
#[derive(Debug, Clone)]
pub struct DurableStore {
    dir: PathBuf,
    /// Snapshot installs through this store (shared across clones), the
    /// `snapshot_epoch` gauge of the serving layer's telemetry.
    epoch: Arc<AtomicU64>,
}

/// What [`DurableStore::load`] found on disk.
#[derive(Debug)]
pub struct Recovered {
    /// The last snapshot, if one was ever installed.
    pub snapshot: Option<SnapshotState>,
    /// The committed WAL records appended since that snapshot, in order.
    pub wal: Vec<WalRecord>,
    /// Whether the WAL ended cleanly (`false` means a torn tail was
    /// truncated — expected after a crash mid-append).
    pub wal_clean: bool,
}

impl DurableStore {
    /// Opens (creating if needed) a durable directory.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            epoch: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Number of snapshots installed through this store (and its clones)
    /// since it was opened.
    pub fn snapshot_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// The directory this store manages.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the snapshot file.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join("state.snap")
    }

    /// Path of the update WAL.
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join("updates.wal")
    }

    /// Loads everything recoverable: the snapshot (if any) and the
    /// committed WAL prefix since it.
    pub fn load(&self) -> Result<Recovered, DurableError> {
        let snapshot = match SnapshotState::read(&self.snapshot_path()) {
            Ok(state) => Some(state),
            Err(DurableError::MissingSnapshot(_)) => None,
            Err(err) => return Err(err),
        };
        let (wal, wal_clean) = read_wal(&self.wal_path())?;
        Ok(Recovered {
            snapshot,
            wal,
            wal_clean,
        })
    }

    /// Opens an appending WAL writer for this store.
    ///
    /// `sync_on_commit` disables fsync for tests and benchmarks that only
    /// care about logical replay, not crash durability.
    pub fn wal_writer(&self, sync_on_commit: bool) -> std::io::Result<WalWriter> {
        WalWriter::open(&self.wal_path(), sync_on_commit)
    }

    /// Atomically installs `state` as the new snapshot and truncates the
    /// WAL: every record the snapshot already captures is dropped, so the
    /// next recovery replays only updates committed after this call.
    ///
    /// Ordering matters — the snapshot is durable *before* the WAL is
    /// cleared, so a crash between the two steps recovers from the new
    /// snapshot plus a (harmlessly re-replayed) stale WAL only if the WAL
    /// survived; replay of already-snapshotted updates is prevented by
    /// truncation, and a crash before truncation at worst replays updates
    /// the snapshot already holds — which is why callers snapshot from a
    /// quiesced dispatcher, where the WAL holds nothing newer than the
    /// snapshot.
    pub fn install_snapshot(&self, state: &SnapshotState) -> std::io::Result<()> {
        state.write_atomic(&self.snapshot_path())?;
        let wal = self.wal_path();
        if wal.exists() {
            std::fs::File::create(&wal)?.sync_data()?;
        }
        self.epoch.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{Registration, SlotState};
    use kspr::Algorithm;

    fn temp_store(tag: &str) -> DurableStore {
        let dir = std::env::temp_dir().join(format!("kspr-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        DurableStore::open(dir).unwrap()
    }

    fn tiny_snapshot() -> SnapshotState {
        SnapshotState {
            dim: 2,
            num_shards: 1,
            next_shard: 0,
            shard_epochs: vec![1],
            slots: vec![SlotState::Live {
                shard: 0,
                values: vec![0.25, 0.75],
            }],
            monitor_next_id: 1,
            registrations: vec![Registration {
                id: 0,
                algorithm: Algorithm::Cta,
                focal: vec![0.5, 0.5],
                k: 2,
            }],
        }
    }

    #[test]
    fn empty_store_loads_empty() {
        let store = temp_store("empty");
        let recovered = store.load().unwrap();
        assert!(recovered.snapshot.is_none());
        assert!(recovered.wal.is_empty());
        assert!(recovered.wal_clean);
    }

    #[test]
    fn snapshot_plus_wal_tail_round_trips() {
        let store = temp_store("roundtrip");
        store.install_snapshot(&tiny_snapshot()).unwrap();

        let mut writer = store.wal_writer(false).unwrap();
        let tail = vec![
            WalRecord::Insert {
                id: 1,
                values: vec![0.9, 0.1],
            },
            WalRecord::Delete { id: 0 },
        ];
        for record in &tail {
            writer.append(record);
        }
        writer.commit().unwrap();

        let recovered = store.load().unwrap();
        assert_eq!(recovered.snapshot, Some(tiny_snapshot()));
        assert_eq!(recovered.wal, tail);
        assert!(recovered.wal_clean);
    }

    #[test]
    fn installing_a_snapshot_truncates_the_wal() {
        let store = temp_store("truncate");
        let mut writer = store.wal_writer(false).unwrap();
        writer.append(&WalRecord::Insert {
            id: 0,
            values: vec![0.5, 0.5],
        });
        writer.commit().unwrap();
        drop(writer);
        assert_eq!(store.load().unwrap().wal.len(), 1);

        store.install_snapshot(&tiny_snapshot()).unwrap();
        let recovered = store.load().unwrap();
        assert_eq!(recovered.snapshot, Some(tiny_snapshot()));
        assert!(recovered.wal.is_empty(), "WAL must be truncated");
    }

    #[test]
    fn snapshot_epoch_counts_installs_across_clones() {
        let store = temp_store("epoch");
        assert_eq!(store.snapshot_epoch(), 0);
        store.install_snapshot(&tiny_snapshot()).unwrap();
        let clone = store.clone();
        clone.install_snapshot(&tiny_snapshot()).unwrap();
        assert_eq!(store.snapshot_epoch(), 2, "clones share the counter");
        assert_eq!(clone.snapshot_epoch(), 2);
    }
}
