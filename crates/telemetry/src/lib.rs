//! Dependency-light metrics core for the kSPR serving stack.
//!
//! The paper's evaluation is organized around side metrics (processed
//! records, CellTree nodes, LP calls, simulated I/O — Figures 11/17/19) and
//! `QueryStats` mirrors those per query; this crate adds the *time*
//! dimension the serving stack (admission → batching → engine → WAL → ack →
//! notify) needs to be observable while it runs:
//!
//! * [`Histogram`] — a lock-free log-bucketed (HDR-style) latency histogram
//!   with atomic buckets; recorded from any thread, snapshot at any time,
//!   snapshots merge exactly.  Quantiles carry a bounded `1/8` relative
//!   error.
//! * [`MetricsRegistry`] — named counters, gauges, and histograms handed out
//!   as `Arc` handles; [`MetricsSnapshot`] is the sorted plain-value export,
//!   renderable as a Prometheus-style text exposition.
//! * [`RequestTrace`] — a span that travels with one request and stamps
//!   monotonic per-[`Stage`] timings that partition its total latency; in
//!   traced mode ([`RequestTrace::traced`]) it also collects a span tree.
//! * [`TraceRecord`] / [`FlightRecorder`] — completed span trees and the
//!   bounded ring retaining the most recent ones; [`chrome_trace_json`]
//!   exports any set of records as Chrome Trace Event Format JSON.
//! * [`parse_json`] — a strict, dependency-free JSON reader for the
//!   trace/perf tooling that consumes those exports.
//!
//! The crate deliberately has no dependencies (not even intra-workspace):
//! every layer of the stack — `kspr-durable`'s WAL, `kspr-serve`'s
//! dispatcher, the wire front-end — can link it without cycles.

mod histogram;
mod json;
mod registry;
mod span;
mod trace;

pub use histogram::{bucket_high, bucket_index, bucket_low, Histogram, HistogramSnapshot};
pub use histogram::{NUM_BUCKETS, SUBBUCKETS};
pub use json::{escape_json_into, parse_json, JsonValue};
pub use registry::{Counter, Gauge, MetricsRegistry, MetricsSnapshot};
pub use span::{chrome_trace_json, FlightRecorder, Span, SpanId, TraceId, TraceRecord};
pub use trace::{RequestTrace, Stage, StageTimings};
