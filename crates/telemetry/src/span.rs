//! Span trees, the flight recorder, and the chrome-trace exporter.
//!
//! A [`TraceRecord`] is the completed span tree of one request: a root
//! `"request"` span plus stage and engine-phase children, every timestamp a
//! nanosecond offset from the trace's start.  The serving stack retains the
//! most recent trees in a [`FlightRecorder`] — a bounded ring whose append
//! path takes no global lock (one atomic cursor bump plus one per-slot
//! mutex) — and [`chrome_trace_json`] renders any set of records as Chrome
//! Trace Event Format JSON, loadable in `chrome://tracing` or Perfetto.

use crate::json::escape_json_into;
use std::borrow::Borrow;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Identifies one request's span tree end to end — client-supplied over the
/// wire (echoed in the response) or server-assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifies one span within its trace: the index into
/// [`TraceRecord::spans`] (the root is always [`SpanId`]`(0)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u32);

/// One timed operation within a trace, linked to its parent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// This span's id (its index in the record).
    pub id: SpanId,
    /// The enclosing span; `None` only for the root.
    pub parent: Option<SpanId>,
    /// A stable operation name (`"queue"`, `"engine"`, `"lp"`, ...).
    pub name: &'static str,
    /// Start offset from the trace start, nanoseconds.
    pub start_ns: u64,
    /// End offset from the trace start, nanoseconds (`>= start_ns`).
    pub end_ns: u64,
}

impl Span {
    /// The span's duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// A complete span tree for one request.
///
/// Invariants (checked by [`TraceRecord::is_well_formed`], maintained by
/// `RequestTrace`): span ids equal their index, the root is span 0 with no
/// parent, every other span's parent precedes it, and every child's window
/// nests inside its parent's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The trace this tree belongs to.
    pub trace_id: TraceId,
    /// The spans, root first, in creation order.
    pub spans: Vec<Span>,
}

impl TraceRecord {
    /// The root span (the whole request window).
    pub fn root(&self) -> &Span {
        &self.spans[0]
    }

    /// The span with id `id`, if present.
    pub fn span(&self, id: SpanId) -> Option<&Span> {
        self.spans.get(id.0 as usize)
    }

    /// The first span named `name`, if any.
    pub fn find(&self, name: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Every direct child of `id`, in creation order.
    pub fn children(&self, id: SpanId) -> impl Iterator<Item = &Span> + '_ {
        self.spans.iter().filter(move |s| s.parent == Some(id))
    }

    /// Structural validity: ids are indices, exactly span 0 is the root,
    /// parents precede children, and child windows nest inside their
    /// parent's window.
    pub fn is_well_formed(&self) -> bool {
        if self.spans.is_empty() {
            return false;
        }
        self.spans.iter().enumerate().all(|(i, span)| {
            if span.id.0 as usize != i || span.start_ns > span.end_ns {
                return false;
            }
            match span.parent {
                None => i == 0,
                Some(parent) => {
                    let Some(p) = self.spans.get(parent.0 as usize) else {
                        return false;
                    };
                    (parent.0 as usize) < i
                        && p.start_ns <= span.start_ns
                        && span.end_ns <= p.end_ns
                }
            }
        })
    }
}

/// A bounded ring of the most recent complete span trees.
///
/// Appends are lock-free in the aggregate sense: one atomic cursor bump
/// claims a slot, then only that slot's mutex is taken — concurrent
/// appenders to different slots never contend, and readers never block the
/// whole ring.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<Arc<TraceRecord>>>>,
    cursor: AtomicUsize,
}

fn unpoisoned<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|poison| poison.into_inner())
}

impl FlightRecorder {
    /// A recorder retaining the most recent `capacity` traces (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Appends one completed trace, evicting the oldest once full.  Returns
    /// the shared handle now stored in the ring.
    pub fn record(&self, record: TraceRecord) -> Arc<TraceRecord> {
        let record = Arc::new(record);
        let slot = self.cursor.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        *unpoisoned(&self.slots[slot]) = Some(Arc::clone(&record));
        record
    }

    /// The retained traces, oldest first.
    pub fn snapshot(&self) -> Vec<Arc<TraceRecord>> {
        let cursor = self.cursor.load(Ordering::Relaxed);
        let len = self.slots.len();
        (0..len)
            .map(|i| (cursor + i) % len)
            .filter_map(|slot| unpoisoned(&self.slots[slot]).clone())
            .collect()
    }

    /// The most recently retained trace with id `trace_id`, if still in the
    /// ring.
    pub fn find(&self, trace_id: TraceId) -> Option<Arc<TraceRecord>> {
        self.snapshot()
            .into_iter()
            .rev()
            .find(|record| record.trace_id == trace_id)
    }
}

/// Nanosecond offset rendered as fractional chrome-trace microseconds.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Renders `traces` as Chrome Trace Event Format JSON: one `"X"` (complete)
/// event per span, `ts`/`dur` in microseconds, one `tid` lane per trace
/// (named through `"M"` metadata events), and the trace/span/parent ids in
/// each event's `args`.  The output loads in `chrome://tracing` / Perfetto
/// and parses with [`crate::parse_json`].
pub fn chrome_trace_json<T: Borrow<TraceRecord>>(traces: &[T]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |event: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(&event);
    };
    for (lane, record) in traces.iter().enumerate() {
        let record = record.borrow();
        let tid = lane + 1;
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"trace 0x{:016x}\"}}}}",
                record.trace_id.0
            ),
            &mut out,
        );
        for span in &record.spans {
            let mut event = String::from("{\"name\":\"");
            escape_json_into(span.name, &mut event);
            let _ = write!(
                event,
                "\",\"cat\":\"kspr\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"trace_id\":\"0x{:016x}\",\"span_id\":{}",
                micros(span.start_ns),
                micros(span.duration_ns()),
                record.trace_id.0,
                span.id.0
            );
            if let Some(parent) = span.parent {
                let _ = write!(event, ",\"parent_id\":{}", parent.0);
            }
            event.push_str("}}");
            push(event, &mut out);
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_record(trace: u64) -> TraceRecord {
        TraceRecord {
            trace_id: TraceId(trace),
            spans: vec![
                Span {
                    id: SpanId(0),
                    parent: None,
                    name: "request",
                    start_ns: 0,
                    end_ns: 5_000,
                },
                Span {
                    id: SpanId(1),
                    parent: Some(SpanId(0)),
                    name: "queue",
                    start_ns: 0,
                    end_ns: 1_000,
                },
                Span {
                    id: SpanId(2),
                    parent: Some(SpanId(0)),
                    name: "engine",
                    start_ns: 1_000,
                    end_ns: 4_500,
                },
                Span {
                    id: SpanId(3),
                    parent: Some(SpanId(2)),
                    name: "lp",
                    start_ns: 1_200,
                    end_ns: 2_000,
                },
            ],
        }
    }

    #[test]
    fn records_validate_and_navigate() {
        let record = demo_record(7);
        assert!(record.is_well_formed());
        assert_eq!(record.root().name, "request");
        assert_eq!(record.find("lp").unwrap().duration_ns(), 800);
        let children: Vec<&str> = record.children(SpanId(0)).map(|s| s.name).collect();
        assert_eq!(children, ["queue", "engine"]);

        let mut broken = demo_record(7);
        broken.spans[3].end_ns = 9_999; // escapes the engine window
        assert!(!broken.is_well_formed());
        let mut broken = demo_record(7);
        broken.spans[1].parent = Some(SpanId(2)); // parent after child
        assert!(!broken.is_well_formed());
    }

    #[test]
    fn recorder_retains_the_most_recent_capacity_traces() {
        let recorder = FlightRecorder::new(3);
        assert_eq!(recorder.capacity(), 3);
        for i in 0..5 {
            recorder.record(demo_record(i));
        }
        let kept: Vec<u64> = recorder.snapshot().iter().map(|r| r.trace_id.0).collect();
        assert_eq!(kept, [2, 3, 4], "oldest first, oldest two evicted");
        assert!(recorder.find(TraceId(4)).is_some());
        assert!(recorder.find(TraceId(1)).is_none(), "evicted");
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let recorder = FlightRecorder::new(0);
        assert_eq!(recorder.capacity(), 1);
        recorder.record(demo_record(1));
        assert_eq!(recorder.snapshot().len(), 1);
    }

    #[test]
    fn chrome_trace_output_parses_and_links_spans() {
        use crate::parse_json;
        let records = [demo_record(3), demo_record(4)];
        let json = chrome_trace_json(&records);
        let doc = parse_json(&json).expect("exporter output must parse");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        // 2 metadata events + 2 * 4 spans.
        assert_eq!(events.len(), 10);
        let lp = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("lp"))
            .expect("lp event");
        assert_eq!(lp.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(lp.get("ts").and_then(|v| v.as_f64()), Some(1.2));
        assert_eq!(lp.get("dur").and_then(|v| v.as_f64()), Some(0.8));
        let args = lp.get("args").expect("args");
        assert_eq!(args.get("span_id").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(args.get("parent_id").and_then(|v| v.as_f64()), Some(2.0));
        assert_eq!(
            args.get("trace_id").and_then(|v| v.as_str()),
            Some("0x0000000000000003")
        );
    }
}
