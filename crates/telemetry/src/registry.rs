//! A registry of named metrics and its consistent snapshot.
//!
//! The registry hands out `Arc` handles so hot paths record through a
//! pre-resolved pointer (no name lookup per observation); the name → handle
//! map is only locked at registration and snapshot time.  A
//! [`MetricsSnapshot`] is the plain-value export: sorted name/value pairs
//! plus full histogram snapshots, renderable as a Prometheus-style text
//! exposition with [`MetricsSnapshot::render_prometheus`].

use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A monotonically increasing metric.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrites the value — for counters mirrored from an authoritative
    /// source (e.g. a WAL writer's own fsync count).
    pub fn store(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A metric that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Named counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    help: Mutex<BTreeMap<String, String>>,
}

fn unpoisoned<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|poison| poison.into_inner())
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            unpoisoned(&self.counters)
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(
            unpoisoned(&self.gauges)
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(
            unpoisoned(&self.histograms)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Attaches a human-readable description to the metric named `name`,
    /// emitted as its `# HELP` line in the Prometheus exposition.
    pub fn describe(&self, name: &str, help: &str) {
        unpoisoned(&self.help).insert(name.to_string(), help.to_string());
    }

    /// A plain-value export of every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: unpoisoned(&self.counters)
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: unpoisoned(&self.gauges)
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: unpoisoned(&self.histograms)
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
            help: unpoisoned(&self.help)
                .iter()
                .map(|(name, h)| (name.clone(), h.clone()))
                .collect(),
        }
    }
}

/// A consistent plain-value view of a [`MetricsRegistry`] (plus whatever
/// extra counters the embedder folds in), sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters as `(name, value)`.
    pub counters: Vec<(String, u64)>,
    /// Gauges as `(name, value)`.
    pub gauges: Vec<(String, u64)>,
    /// Full histogram states as `(name, snapshot)`.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// `# HELP` descriptions as `(name, text)` (metrics without one fall
    /// back to their own name in the exposition).
    pub help: Vec<(String, String)>,
}

impl MetricsSnapshot {
    /// The counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// The `# HELP` text for `name`: its registered description, or the
    /// name itself when none was registered.
    fn help_text<'a>(&'a self, name: &'a str) -> &'a str {
        self.help
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h.as_str())
            .unwrap_or(name)
    }

    /// Renders the snapshot as a Prometheus-style text exposition: every
    /// series led by its `# HELP` and `# TYPE` lines, counters and gauges
    /// as plain samples, histograms as summaries with `quantile` labels
    /// plus `_sum` and `_count` series.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "# HELP {name} {}", self.help_text(name));
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "# HELP {name} {}", self.help_text(name));
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# HELP {name} {}", self.help_text(name));
            let _ = writeln!(out, "# TYPE {name} summary");
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", h.quantile(q));
            }
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_snapshots_are_sorted() {
        let registry = MetricsRegistry::new();
        registry.counter("b_requests").add(2);
        registry.counter("a_requests").inc();
        registry.counter("b_requests").inc();
        registry.gauge("depth").set(7);
        registry.histogram("lat").record(1000);

        let snap = registry.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a_requests".into(), 1), ("b_requests".into(), 3)]
        );
        assert_eq!(snap.gauge("depth"), Some(7));
        assert_eq!(snap.histogram("lat").unwrap().count(), 1);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn prometheus_exposition_has_every_series() {
        let registry = MetricsRegistry::new();
        registry.counter("kspr_queries").add(5);
        registry.gauge("kspr_queue_depth").set(3);
        let h = registry.histogram("kspr_stage_engine_ns");
        h.record(100);
        h.record(200);
        registry.describe("kspr_queries", "Queries answered since start.");
        registry.describe("kspr_stage_engine_ns", "Engine-stage latency, ns.");

        let text = registry.snapshot().render_prometheus();
        assert!(text.contains("# HELP kspr_queries Queries answered since start."));
        assert!(text.contains("# TYPE kspr_queries counter"));
        assert!(text.contains("kspr_queries 5"));
        assert!(
            text.contains("# HELP kspr_queue_depth kspr_queue_depth"),
            "an undescribed metric falls back to its name as help text"
        );
        assert!(text.contains("# TYPE kspr_queue_depth gauge"));
        assert!(text.contains("kspr_queue_depth 3"));
        assert!(text.contains("# HELP kspr_stage_engine_ns Engine-stage latency, ns."));
        assert!(text.contains("# TYPE kspr_stage_engine_ns summary"));
        assert!(text.contains("kspr_stage_engine_ns{quantile=\"0.5\"}"));
        assert!(text.contains("kspr_stage_engine_ns_sum 300"));
        assert!(text.contains("kspr_stage_engine_ns_count 2"));
        // Every series carries a HELP line: one per counter/gauge/histogram.
        assert_eq!(text.matches("# HELP ").count(), 3);
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                assert!(!rest.trim().is_empty(), "HELP lines are never empty");
            }
        }
    }
}
