//! Per-request stage tracing.
//!
//! A [`RequestTrace`] is created when a request enters the serving stack and
//! travels with it.  Each pipeline stage calls [`RequestTrace::stamp`] when
//! it finishes; the stamp attributes the time elapsed since the previous
//! stamp (or since creation) to that stage, so the stage durations partition
//! the request's total latency.  All clocks are monotonic
//! ([`std::time::Instant`]).
//!
//! A trace started with [`RequestTrace::traced`] additionally collects a
//! span tree: every stamp becomes a child span of the root `"request"`
//! span, custom windows can be added with [`RequestTrace::span`] and
//! [`RequestTrace::child_span`], and [`RequestTrace::finish`] seals the tree
//! into a [`TraceRecord`] for the flight recorder.  A plain
//! [`RequestTrace::start`] trace carries no span state at all — the
//! collecting path costs one `Option` check per stamp when disabled.

use crate::span::{Span, SpanId, TraceId, TraceRecord};
use std::time::{Duration, Instant};

/// The pipeline stages a request can pass through, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Sitting in the dispatcher's queue, from enqueue to dequeue.
    Queue,
    /// Admission verdict plus request validation.
    Admission,
    /// Batch assembly: grouping compatible requests for one engine run.
    Batch,
    /// The engine run (or the update's application to the engine).
    Engine,
    /// The WAL write + fsync committing the update before its ack.
    WalCommit,
    /// Result packaging up to the acknowledgement send.
    Ack,
    /// Standing-query maintenance and delta notification.
    Notify,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 7] = [
        Stage::Queue,
        Stage::Admission,
        Stage::Batch,
        Stage::Engine,
        Stage::WalCommit,
        Stage::Ack,
        Stage::Notify,
    ];

    /// Number of stages.
    pub const COUNT: usize = Self::ALL.len();

    /// A stable lowercase identifier, usable as a metric-name component.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Admission => "admission",
            Stage::Batch => "batch",
            Stage::Engine => "engine",
            Stage::WalCommit => "wal_commit",
            Stage::Ack => "ack",
            Stage::Notify => "notify",
        }
    }

    /// The stage's index into [`Stage::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }
}

/// The optional span-collection state of a traced request (boxed so the
/// common untraced path stays one pointer wide).
#[derive(Debug, Clone)]
struct SpanLog {
    trace_id: TraceId,
    pinned: bool,
    spans: Vec<Span>,
}

/// Monotonic per-stage timings for one request, optionally collecting a
/// span tree.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    start: Instant,
    last: Instant,
    nanos: [u64; Stage::COUNT],
    spans: Option<Box<SpanLog>>,
}

impl Default for RequestTrace {
    fn default() -> Self {
        Self::start()
    }
}

impl RequestTrace {
    /// Starts the trace clock (call at enqueue).  No spans are collected.
    pub fn start() -> Self {
        let now = Instant::now();
        Self {
            start: now,
            last: now,
            nanos: [0; Stage::COUNT],
            spans: None,
        }
    }

    /// Starts a **span-collecting** trace under `trace_id`: every stamp
    /// also records a child span of the root `"request"` span.  A `pinned`
    /// trace (client-supplied id) is always retained by the flight
    /// recorder; an unpinned one only when it crosses the slow threshold.
    pub fn traced(trace_id: TraceId, pinned: bool) -> Self {
        let mut trace = Self::start();
        trace.spans = Some(Box::new(SpanLog {
            trace_id,
            pinned,
            spans: vec![Span {
                id: SpanId(0),
                parent: None,
                name: "request",
                start_ns: 0,
                end_ns: 0,
            }],
        }));
        trace
    }

    /// Nanosecond offset of `at` from the trace start.
    fn offset_ns(&self, at: Instant) -> u64 {
        u64::try_from(at.duration_since(self.start).as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records the `[last, now]` window as a root-child span named `name`
    /// (no-op unless span-collecting).
    fn push_window(&mut self, name: &'static str, now: Instant) -> Option<SpanId> {
        let start_ns = self.offset_ns(self.last);
        let end_ns = self.offset_ns(now);
        let log = self.spans.as_deref_mut()?;
        let id = SpanId(log.spans.len() as u32);
        log.spans.push(Span {
            id,
            parent: Some(SpanId(0)),
            name,
            start_ns,
            end_ns,
        });
        Some(id)
    }

    /// Attributes the time since the previous stamp (or since the start) to
    /// `stage` and advances the stamp clock.  Stamping the same stage twice
    /// accumulates.  On a span-collecting trace the stamped window is also
    /// recorded as a child span of the root, and its id returned.
    pub fn stamp(&mut self, stage: Stage) -> Option<SpanId> {
        let now = Instant::now();
        let elapsed = now.duration_since(self.last);
        self.nanos[stage.index()] += u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let span = self.push_window(stage.name(), now);
        self.last = now;
        span
    }

    /// Records the time since the previous stamp as a root-child span named
    /// `name` **without** attributing it to any [`Stage`], and advances the
    /// stamp clock.  Used for windows outside the stage taxonomy (e.g. the
    /// wire front-end's decode window).  No-op on an untraced request.
    pub fn span(&mut self, name: &'static str) -> Option<SpanId> {
        let now = Instant::now();
        let span = self.push_window(name, now);
        if span.is_some() {
            self.last = now;
        }
        span
    }

    /// Adds a span under `parent` covering `[start_ns, end_ns]` (offsets
    /// from the trace start), clamped into the parent's window so the tree
    /// stays well-formed.  Used to lay engine-phase breakdowns under the
    /// engine stage span after the fact.
    pub fn child_span(
        &mut self,
        parent: SpanId,
        name: &'static str,
        start_ns: u64,
        end_ns: u64,
    ) -> Option<SpanId> {
        let log = self.spans.as_deref_mut()?;
        let window = log.spans.get(parent.0 as usize)?;
        let start_ns = start_ns.clamp(window.start_ns, window.end_ns);
        let end_ns = end_ns.clamp(start_ns, window.end_ns);
        let id = SpanId(log.spans.len() as u32);
        log.spans.push(Span {
            id,
            parent: Some(parent),
            name,
            start_ns,
            end_ns,
        });
        Some(id)
    }

    /// The `[start_ns, end_ns]` window of a recorded span.
    pub fn span_bounds(&self, id: SpanId) -> Option<(u64, u64)> {
        let span = self.spans.as_deref()?.spans.get(id.0 as usize)?;
        Some((span.start_ns, span.end_ns))
    }

    /// The trace id, if this request collects spans.
    pub fn trace_id(&self) -> Option<TraceId> {
        self.spans.as_deref().map(|log| log.trace_id)
    }

    /// Whether the span tree must be retained regardless of latency
    /// (client-supplied trace ids are pinned).
    pub fn pinned(&self) -> bool {
        self.spans.as_deref().is_some_and(|log| log.pinned)
    }

    /// Seals the span tree: closes the root span at the current total and
    /// returns the completed [`TraceRecord`] (`None` on an untraced
    /// request).
    pub fn finish(self) -> Option<TraceRecord> {
        let total = self.total_nanos();
        let mut log = self.spans?;
        log.spans[0].end_ns = total;
        Some(TraceRecord {
            trace_id: log.trace_id,
            spans: log.spans,
        })
    }

    /// Nanoseconds attributed to `stage` so far.
    pub fn stage_nanos(&self, stage: Stage) -> u64 {
        self.nanos[stage.index()]
    }

    /// Total time since the trace started.
    pub fn total(&self) -> Duration {
        self.start.elapsed()
    }

    /// Total time since the trace started, in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        u64::try_from(self.total().as_nanos()).unwrap_or(u64::MAX)
    }

    /// A plain-value copy of the stage timings.
    pub fn timings(&self) -> StageTimings {
        StageTimings { nanos: self.nanos }
    }
}

/// Owned per-stage timings, detached from the trace's clocks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    nanos: [u64; Stage::COUNT],
}

impl StageTimings {
    /// Nanoseconds attributed to `stage`.
    pub fn stage_nanos(&self, stage: Stage) -> u64 {
        self.nanos[stage.index()]
    }

    /// Iterates `(stage, nanos)` in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, u64)> + '_ {
        Stage::ALL.iter().map(move |&s| (s, self.nanos[s.index()]))
    }

    /// Sum over all stages.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_have_stable_names_and_indices() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "queue",
                "admission",
                "batch",
                "engine",
                "wal_commit",
                "ack",
                "notify"
            ]
        );
    }

    #[test]
    fn stamps_partition_the_timeline() {
        let mut trace = RequestTrace::start();
        std::thread::sleep(Duration::from_millis(2));
        trace.stamp(Stage::Queue);
        std::thread::sleep(Duration::from_millis(2));
        trace.stamp(Stage::Engine);
        trace.stamp(Stage::Ack);

        assert!(trace.stage_nanos(Stage::Queue) >= 1_000_000);
        assert!(trace.stage_nanos(Stage::Engine) >= 1_000_000);
        assert_eq!(trace.stage_nanos(Stage::Batch), 0);
        let timings = trace.timings();
        assert!(timings.total_nanos() <= trace.total_nanos());
        assert_eq!(
            timings.iter().map(|(_, ns)| ns).sum::<u64>(),
            timings.total_nanos()
        );
    }

    #[test]
    fn restamping_accumulates() {
        let mut trace = RequestTrace::start();
        trace.stamp(Stage::Engine);
        std::thread::sleep(Duration::from_millis(1));
        trace.stamp(Stage::Engine);
        assert!(trace.stage_nanos(Stage::Engine) >= 1_000_000);
    }

    #[test]
    fn untraced_requests_collect_no_spans() {
        let mut trace = RequestTrace::start();
        assert_eq!(trace.trace_id(), None);
        assert!(!trace.pinned());
        assert_eq!(trace.stamp(Stage::Queue), None);
        assert_eq!(trace.span("wire"), None);
        assert!(trace.finish().is_none());
    }

    #[test]
    fn traced_requests_build_a_well_formed_tree() {
        let mut trace = RequestTrace::traced(TraceId(0xfeed), true);
        assert_eq!(trace.trace_id(), Some(TraceId(0xfeed)));
        assert!(trace.pinned());
        let wire = trace.span("wire").expect("traced: wire span recorded");
        std::thread::sleep(Duration::from_millis(1));
        trace.stamp(Stage::Queue).expect("queue span");
        let engine = trace.stamp(Stage::Engine).expect("engine span");
        let (es, ee) = trace.span_bounds(engine).expect("engine bounds");
        // A child laid past the engine window is clamped back inside it.
        let lp = trace
            .child_span(engine, "lp", es, ee + 1_000_000)
            .expect("lp child");
        assert_eq!(trace.span_bounds(lp), Some((es, ee)));
        trace.stamp(Stage::Ack);

        let record = trace.finish().expect("traced request seals to a record");
        assert_eq!(record.trace_id, TraceId(0xfeed));
        assert!(record.is_well_formed());
        assert_eq!(record.root().name, "request");
        let names: Vec<&str> = record.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, ["request", "wire", "queue", "engine", "lp", "ack"]);
        assert_eq!(record.find("lp").unwrap().parent, Some(engine));
        assert_eq!(record.span(wire).unwrap().parent, Some(SpanId(0)));
        assert!(
            record.find("queue").unwrap().duration_ns() >= 1_000_000,
            "the stamped window and the span agree"
        );
        assert!(record.root().end_ns >= record.find("ack").unwrap().end_ns);
    }
}
