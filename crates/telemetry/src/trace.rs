//! Per-request stage tracing.
//!
//! A [`RequestTrace`] is created when a request enters the serving stack and
//! travels with it.  Each pipeline stage calls [`RequestTrace::stamp`] when
//! it finishes; the stamp attributes the time elapsed since the previous
//! stamp (or since creation) to that stage, so the stage durations partition
//! the request's total latency.  All clocks are monotonic
//! ([`std::time::Instant`]).

use std::time::{Duration, Instant};

/// The pipeline stages a request can pass through, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Sitting in the dispatcher's queue, from enqueue to dequeue.
    Queue,
    /// Admission verdict plus request validation.
    Admission,
    /// Batch assembly: grouping compatible requests for one engine run.
    Batch,
    /// The engine run (or the update's application to the engine).
    Engine,
    /// The WAL write + fsync committing the update before its ack.
    WalCommit,
    /// Result packaging up to the acknowledgement send.
    Ack,
    /// Standing-query maintenance and delta notification.
    Notify,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 7] = [
        Stage::Queue,
        Stage::Admission,
        Stage::Batch,
        Stage::Engine,
        Stage::WalCommit,
        Stage::Ack,
        Stage::Notify,
    ];

    /// Number of stages.
    pub const COUNT: usize = Self::ALL.len();

    /// A stable lowercase identifier, usable as a metric-name component.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Admission => "admission",
            Stage::Batch => "batch",
            Stage::Engine => "engine",
            Stage::WalCommit => "wal_commit",
            Stage::Ack => "ack",
            Stage::Notify => "notify",
        }
    }

    /// The stage's index into [`Stage::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Monotonic per-stage timings for one request.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    start: Instant,
    last: Instant,
    nanos: [u64; Stage::COUNT],
}

impl Default for RequestTrace {
    fn default() -> Self {
        Self::start()
    }
}

impl RequestTrace {
    /// Starts the trace clock (call at enqueue).
    pub fn start() -> Self {
        let now = Instant::now();
        Self {
            start: now,
            last: now,
            nanos: [0; Stage::COUNT],
        }
    }

    /// Attributes the time since the previous stamp (or since the start) to
    /// `stage` and advances the stamp clock.  Stamping the same stage twice
    /// accumulates.
    pub fn stamp(&mut self, stage: Stage) {
        let now = Instant::now();
        let elapsed = now.duration_since(self.last);
        self.nanos[stage.index()] += u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.last = now;
    }

    /// Nanoseconds attributed to `stage` so far.
    pub fn stage_nanos(&self, stage: Stage) -> u64 {
        self.nanos[stage.index()]
    }

    /// Total time since the trace started.
    pub fn total(&self) -> Duration {
        self.start.elapsed()
    }

    /// Total time since the trace started, in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        u64::try_from(self.total().as_nanos()).unwrap_or(u64::MAX)
    }

    /// A plain-value copy of the stage timings.
    pub fn timings(&self) -> StageTimings {
        StageTimings { nanos: self.nanos }
    }
}

/// Owned per-stage timings, detached from the trace's clocks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    nanos: [u64; Stage::COUNT],
}

impl StageTimings {
    /// Nanoseconds attributed to `stage`.
    pub fn stage_nanos(&self, stage: Stage) -> u64 {
        self.nanos[stage.index()]
    }

    /// Iterates `(stage, nanos)` in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, u64)> + '_ {
        Stage::ALL.iter().map(move |&s| (s, self.nanos[s.index()]))
    }

    /// Sum over all stages.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_have_stable_names_and_indices() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "queue",
                "admission",
                "batch",
                "engine",
                "wal_commit",
                "ack",
                "notify"
            ]
        );
    }

    #[test]
    fn stamps_partition_the_timeline() {
        let mut trace = RequestTrace::start();
        std::thread::sleep(Duration::from_millis(2));
        trace.stamp(Stage::Queue);
        std::thread::sleep(Duration::from_millis(2));
        trace.stamp(Stage::Engine);
        trace.stamp(Stage::Ack);

        assert!(trace.stage_nanos(Stage::Queue) >= 1_000_000);
        assert!(trace.stage_nanos(Stage::Engine) >= 1_000_000);
        assert_eq!(trace.stage_nanos(Stage::Batch), 0);
        let timings = trace.timings();
        assert!(timings.total_nanos() <= trace.total_nanos());
        assert_eq!(
            timings.iter().map(|(_, ns)| ns).sum::<u64>(),
            timings.total_nanos()
        );
    }

    #[test]
    fn restamping_accumulates() {
        let mut trace = RequestTrace::start();
        trace.stamp(Stage::Engine);
        std::thread::sleep(Duration::from_millis(1));
        trace.stamp(Stage::Engine);
        assert!(trace.stage_nanos(Stage::Engine) >= 1_000_000);
    }
}
