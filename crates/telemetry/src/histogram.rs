//! A lock-free log-bucketed latency histogram.
//!
//! The bucket layout is the classic HDR/log-linear scheme: values below
//! [`SUBBUCKETS`] land in exact unit buckets, and every binary octave above
//! that is split into [`SUBBUCKETS`] equal sub-buckets.  A recorded value is
//! therefore attributed to a bucket whose width is at most `value /
//! SUBBUCKETS`, which bounds the relative quantile error at `1 /
//! SUBBUCKETS` (12.5%) while covering the full `u64` range with
//! [`NUM_BUCKETS`] (496) fixed slots — small enough to keep one histogram
//! per pipeline stage, tier, and algorithm resident with no allocation on
//! the record path.
//!
//! Recording is a single `fetch_add` on the bucket plus `count`/`sum`
//! updates and a `fetch_max`/`fetch_min` for the exact extremes — no locks,
//! so every serving thread can stamp into the same histogram.  Reading is a
//! [`Histogram::snapshot`]: a plain-value copy that supports quantiles,
//! merging with other snapshots, and serialization by whoever owns the
//! wire format.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per binary octave (`2^SUB_BITS`).
const SUB_BITS: u32 = 3;

/// Number of sub-buckets every octave is split into; also the bound on the
/// denominator of the relative quantile error.
pub const SUBBUCKETS: u64 = 1 << SUB_BITS;

/// Total number of buckets covering the whole `u64` range.
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS) + SUBBUCKETS as usize;

/// Maps a value to its bucket index.  Monotone: `a <= b` implies
/// `bucket_index(a) <= bucket_index(b)`.
pub fn bucket_index(value: u64) -> usize {
    if value < SUBBUCKETS {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let shift = msb - SUB_BITS;
    let base = ((shift + 1) as usize) << SUB_BITS;
    base + ((value >> shift) - SUBBUCKETS) as usize
}

/// The smallest value attributed to bucket `index`.
pub fn bucket_low(index: usize) -> u64 {
    if index < SUBBUCKETS as usize {
        return index as u64;
    }
    let shift = (index >> SUB_BITS) as u32 - 1;
    let offset = (index & (SUBBUCKETS as usize - 1)) as u64;
    (SUBBUCKETS + offset) << shift
}

/// The largest value attributed to bucket `index`.
pub fn bucket_high(index: usize) -> u64 {
    if index < SUBBUCKETS as usize {
        return index as u64;
    }
    if index + 1 >= NUM_BUCKETS {
        return u64::MAX;
    }
    bucket_low(index + 1) - 1
}

/// A lock-free latency histogram with atomic log-linear buckets.
///
/// All recording methods take `&self` and are safe to call from any number
/// of threads concurrently; `snapshot` can run at any time and observes a
/// (possibly slightly torn, always monotone) view of the counters.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the fixed array through a Vec.
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; NUM_BUCKETS]> = buckets
            .into_boxed_slice()
            .try_into()
            .expect("NUM_BUCKETS-sized allocation");
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds (saturating at
    /// `u64::MAX` — ~584 years).
    pub fn record_duration(&self, elapsed: std::time::Duration) {
        self.record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A plain-value copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect::<Vec<u64>>();
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
    min: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no observations.
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (`0 < q <= 1`): the upper bound of the first bucket
    /// whose cumulative count reaches `ceil(q * count)`, clamped to the
    /// exactly-tracked extremes.  Overestimates the true quantile by at most
    /// one bucket width (a `1/SUBBUCKETS` relative error).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_high(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds `other` into `self`.  Because the bucket geometry is fixed,
    /// merging snapshots is exact: the merged snapshot equals the snapshot
    /// of a histogram that recorded both streams.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        // The live histogram's sum wraps on overflow (atomic fetch_add);
        // wrap here too so a merge of partial snapshots reproduces the
        // pooled histogram bit for bit even on pathological value ranges.
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Per-bucket counts, for exposition formats that want the full shape.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let probes = [
            0u64,
            1,
            7,
            8,
            9,
            15,
            16,
            17,
            100,
            1_000,
            1_000_000,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut last = 0usize;
        for &v in &probes {
            let index = bucket_index(v);
            assert!(index < NUM_BUCKETS, "index {index} for {v}");
            assert!(index >= last, "bucket_index not monotone at {v}");
            last = index;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_are_exact_below_subbuckets() {
        for v in 0..SUBBUCKETS {
            let index = bucket_index(v);
            assert_eq!(bucket_low(index), v);
            assert_eq!(bucket_high(index), v);
        }
    }

    #[test]
    fn bucket_bounds_bracket_every_boundary() {
        // Probe both sides of every octave boundary and every sub-bucket
        // boundary in the first few octaves.
        let mut boundaries: Vec<u64> = Vec::new();
        for shift in 0..60u32 {
            for offset in 0..SUBBUCKETS {
                boundaries.push((SUBBUCKETS + offset) << shift);
            }
        }
        for &low in &boundaries {
            let index = bucket_index(low);
            assert_eq!(bucket_low(index), low, "lower bound of bucket at {low}");
            assert_eq!(
                bucket_index(bucket_high(index)),
                index,
                "upper bound stays inside the bucket at {low}"
            );
            if low > 0 {
                assert_eq!(
                    bucket_high(bucket_index(low - 1)),
                    low - 1,
                    "the value below a boundary closes the previous bucket"
                );
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Any value's bucket upper bound is within value/SUBBUCKETS + 1.
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let high = bucket_high(bucket_index(v));
            assert!(high >= v);
            assert!(
                high - v <= v / SUBBUCKETS + 1,
                "bucket too wide at {v}: high {high}"
            );
            v = v.wrapping_mul(3).wrapping_add(7);
        }
    }

    #[test]
    fn quantiles_of_a_known_stream() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.sum(), 5050);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 100);
        // The p50 of 1..=100 is 50; log-bucket resolution may round up to
        // the bucket upper bound (at most 12.5% above).
        let p50 = s.p50();
        assert!((50..=57).contains(&p50), "p50 {p50}");
        let p99 = s.p99();
        assert!((99..=100).contains(&p99), "p99 {p99}");
        assert_eq!(s.quantile(1.0), 100);
    }

    #[test]
    fn empty_snapshot_reports_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0);
        assert_eq!(s.p50(), 0);
    }

    #[test]
    fn merge_equals_pooled_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let pooled = Histogram::new();
        for v in [3u64, 9, 81, 6561, 43_046_721] {
            a.record(v);
            pooled.record(v);
        }
        for v in [1u64, 2, 4, 1_000_000, u64::MAX] {
            b.record(v);
            pooled.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, pooled.snapshot());
    }
}
