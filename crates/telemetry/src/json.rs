//! A minimal JSON reader/escaper for the observability surfaces.
//!
//! The workspace builds offline (no serde), but the chrome-trace exporter,
//! its tests, and the perf-trajectory checks all need to *consume* JSON.
//! This is a strict recursive-descent parser over the JSON grammar — objects
//! keep their key order, numbers are `f64` — plus the string escaper the
//! exporters share.  It is not a streaming parser and has a fixed recursion
//! cap; both are fine for telemetry-sized documents.

/// Nesting depth past which [`parse_json`] gives up (defends the stack
/// against adversarial `[[[[...`).
const MAX_DEPTH: usize = 128;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source key order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// The member named `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Parses one complete JSON document; `None` on any syntax error or
/// trailing non-whitespace.
pub fn parse_json(text: &str) -> Option<JsonValue> {
    let bytes = text.as_bytes();
    let mut at = 0;
    let value = parse_value(bytes, &mut at, 0)?;
    skip_ws(bytes, &mut at);
    (at == bytes.len()).then_some(value)
}

fn skip_ws(bytes: &[u8], at: &mut usize) {
    while matches!(bytes.get(*at), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        *at += 1;
    }
}

fn eat(bytes: &[u8], at: &mut usize, expected: u8) -> Option<()> {
    (bytes.get(*at) == Some(&expected)).then(|| *at += 1)
}

fn parse_value(bytes: &[u8], at: &mut usize, depth: usize) -> Option<JsonValue> {
    if depth > MAX_DEPTH {
        return None;
    }
    skip_ws(bytes, at);
    match bytes.get(*at)? {
        b'n' => parse_literal(bytes, at, b"null", JsonValue::Null),
        b't' => parse_literal(bytes, at, b"true", JsonValue::Bool(true)),
        b'f' => parse_literal(bytes, at, b"false", JsonValue::Bool(false)),
        b'"' => Some(JsonValue::String(parse_string(bytes, at)?)),
        b'[' => parse_array(bytes, at, depth),
        b'{' => parse_object(bytes, at, depth),
        _ => parse_number(bytes, at),
    }
}

fn parse_literal(bytes: &[u8], at: &mut usize, word: &[u8], value: JsonValue) -> Option<JsonValue> {
    let end = at.checked_add(word.len())?;
    if bytes.get(*at..end)? == word {
        *at = end;
        Some(value)
    } else {
        None
    }
}

fn parse_array(bytes: &[u8], at: &mut usize, depth: usize) -> Option<JsonValue> {
    eat(bytes, at, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, at);
    if bytes.get(*at) == Some(&b']') {
        *at += 1;
        return Some(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, at, depth + 1)?);
        skip_ws(bytes, at);
        match bytes.get(*at)? {
            b',' => *at += 1,
            b']' => {
                *at += 1;
                return Some(JsonValue::Array(items));
            }
            _ => return None,
        }
    }
}

fn parse_object(bytes: &[u8], at: &mut usize, depth: usize) -> Option<JsonValue> {
    eat(bytes, at, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, at);
    if bytes.get(*at) == Some(&b'}') {
        *at += 1;
        return Some(JsonValue::Object(members));
    }
    loop {
        skip_ws(bytes, at);
        let key = parse_string(bytes, at)?;
        skip_ws(bytes, at);
        eat(bytes, at, b':')?;
        let value = parse_value(bytes, at, depth + 1)?;
        members.push((key, value));
        skip_ws(bytes, at);
        match bytes.get(*at)? {
            b',' => *at += 1,
            b'}' => {
                *at += 1;
                return Some(JsonValue::Object(members));
            }
            _ => return None,
        }
    }
}

fn parse_string(bytes: &[u8], at: &mut usize) -> Option<String> {
    eat(bytes, at, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*at)? {
            b'"' => {
                *at += 1;
                return Some(out);
            }
            b'\\' => {
                *at += 1;
                match bytes.get(*at)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let end = at.checked_add(5)?;
                        let hex = std::str::from_utf8(bytes.get(*at + 1..end)?).ok()?;
                        let code = u32::from_str_radix(hex, 16).ok()?;
                        // Surrogates are rejected rather than paired; the
                        // telemetry surfaces never emit them.
                        out.push(char::from_u32(code)?);
                        *at = end - 1;
                    }
                    _ => return None,
                }
                *at += 1;
            }
            _ => {
                // Copy one UTF-8 scalar (control bytes are tolerated).
                let rest = std::str::from_utf8(bytes.get(*at..)?).ok()?;
                let ch = rest.chars().next()?;
                out.push(ch);
                *at += ch.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], at: &mut usize) -> Option<JsonValue> {
    let start = *at;
    if bytes.get(*at) == Some(&b'-') {
        *at += 1;
    }
    while matches!(
        bytes.get(*at),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *at += 1;
    }
    if *at == start {
        return None;
    }
    std::str::from_utf8(&bytes[start..*at])
        .ok()?
        .parse()
        .ok()
        .filter(|n: &f64| n.is_finite())
        .map(JsonValue::Number)
}

/// Appends `text` to `out` with JSON string escaping applied (quotes,
/// backslashes, and control characters).
pub fn escape_json_into(text: &str, out: &mut String) {
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc =
            parse_json(r#"{"a": [1, -2.5, 1e3], "b": {"c": null, "d": true}, "e": "x\n\"y\" é"}"#)
                .expect("valid document");
        let a = doc.get("a").and_then(|v| v.as_array()).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(1000.0));
        assert_eq!(doc.get("b").unwrap().get("c"), Some(&JsonValue::Null));
        assert_eq!(
            doc.get("b").unwrap().get("d").and_then(|v| v.as_bool()),
            Some(true)
        );
        assert_eq!(
            doc.get("e").and_then(|v| v.as_str()),
            Some("x\n\"y\" \u{e9}")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1,]",
            "{\"a\": }",
            "{\"a\": 1,}",
            "\"unterminated",
            "12 34",
            "nul",
            "[1] trailing",
            "NaN",
            "1e999",
            "\"bad \\x escape\"",
        ] {
            assert!(parse_json(bad).is_none(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse_json(&deep).is_none(), "past the recursion cap");
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse_json(&ok).is_some());
    }

    #[test]
    fn escaping_round_trips_through_the_parser() {
        let nasty = "a\"b\\c\nd\te\u{1}f\u{e9}";
        let mut encoded = String::from("\"");
        escape_json_into(nasty, &mut encoded);
        encoded.push('"');
        assert_eq!(
            parse_json(&encoded).unwrap().as_str(),
            Some(nasty),
            "escape + parse must be the identity"
        );
    }
}
