//! Property tests for the span-tree exporter: whatever tree the tracing
//! layer records — including names that need escaping — the chrome-trace
//! JSON must parse, keep every span, and preserve the tree's invariants.

use kspr_telemetry::{
    chrome_trace_json, parse_json, JsonValue, RequestTrace, Span, SpanId, Stage, TraceId,
    TraceRecord,
};
use proptest::prelude::*;

/// A fixed pool of span names, deliberately including characters the JSON
/// escaper must handle: quotes, backslashes, control characters, non-ASCII.
const NAMES: [&str; 6] = [
    "request",
    "lp \"solve\"",
    "back\\slash",
    "tab\tseparated",
    "новый\nspan",
    "engine",
];

const ROOT_NS: u64 = 1_000_000;

/// Builds a well-formed record the same way `RequestTrace::child_span`
/// does: each generated node picks an existing parent and has its window
/// clamped into the parent's, so nesting holds by construction.
fn build_record(trace: u64, nodes: &[(usize, usize, u64, u64)]) -> TraceRecord {
    let mut spans = vec![Span {
        id: SpanId(0),
        parent: None,
        name: "request",
        start_ns: 0,
        end_ns: ROOT_NS,
    }];
    for &(parent_pick, name_pick, a, b) in nodes {
        let parent = parent_pick % spans.len();
        let low = spans[parent].start_ns;
        let high = spans[parent].end_ns;
        let start_ns = (a % (ROOT_NS + 2)).clamp(low, high);
        let end_ns = (b % (ROOT_NS + 2)).clamp(start_ns, high);
        spans.push(Span {
            id: SpanId(spans.len() as u32),
            parent: Some(SpanId(parent as u32)),
            name: NAMES[name_pick % NAMES.len()],
            start_ns,
            end_ns,
        });
    }
    TraceRecord {
        trace_id: TraceId(trace),
        spans,
    }
}

/// The `"X"` (complete-slice) events of a parsed chrome trace.
fn slice_events(json: &JsonValue) -> Vec<&JsonValue> {
    json.get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("a traceEvents array")
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chrome_trace_export_is_valid_json_and_lossless(
        trees in prop::collection::vec(
            prop::collection::vec(
                (0usize..usize::MAX, 0usize..usize::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
                0..12,
            ),
            1..4,
        ),
    ) {
        let records: Vec<TraceRecord> = trees
            .iter()
            .enumerate()
            .map(|(i, nodes)| build_record(0xACE0 + i as u64, nodes))
            .collect();
        for record in &records {
            prop_assert!(record.is_well_formed());
        }

        let text = chrome_trace_json(&records);
        let json = parse_json(&text).expect("the export must be valid JSON");
        prop_assert_eq!(
            json.get("displayTimeUnit").and_then(|v| v.as_str()),
            Some("ns")
        );

        // Lossless: one slice per span, in order, with the escaped name
        // round-tripping back to the original and the clock staying
        // consistent (ts/dur are non-negative fractional microseconds that
        // reproduce the span window).
        let slices = slice_events(&json);
        let total_spans: usize = records.iter().map(|r| r.spans.len()).sum();
        prop_assert_eq!(slices.len(), total_spans);
        let spans = records.iter().flat_map(|r| r.spans.iter());
        for (slice, span) in slices.iter().zip(spans) {
            prop_assert_eq!(
                slice.get("name").and_then(|v| v.as_str()),
                Some(span.name)
            );
            let ts = slice.get("ts").and_then(|v| v.as_f64()).expect("ts");
            let dur = slice.get("dur").and_then(|v| v.as_f64()).expect("dur");
            prop_assert!((ts - span.start_ns as f64 / 1_000.0).abs() < 1e-6);
            prop_assert!((dur - span.duration_ns() as f64 / 1_000.0).abs() < 1e-6);
            let span_id = slice
                .get("args")
                .and_then(|a| a.get("span_id"))
                .and_then(|v| v.as_f64())
                .expect("span_id");
            prop_assert_eq!(span_id as u32, span.id.0);
        }

        // Every trace contributes exactly one thread-name metadata event.
        let metadata = json
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("M"))
            .count();
        prop_assert_eq!(metadata, records.len());
    }

    /// Drives the live `RequestTrace` API with an arbitrary op sequence:
    /// whatever interleaving of stage stamps, named windows, and
    /// after-the-fact child spans a server thread produces, the finished
    /// record keeps the tree invariants and exports parseable JSON.
    #[test]
    fn arbitrary_request_trace_histories_finish_well_formed(
        ops in prop::collection::vec((0usize..16, 0u64..u64::MAX, 0u64..u64::MAX), 0..24),
        pinned_bit in 0u8..2,
    ) {
        let pinned = pinned_bit == 1;
        let mut trace = RequestTrace::traced(TraceId(0xBEEF), pinned);
        for &(op, a, b) in &ops {
            match op {
                0..=6 => {
                    trace.stamp(Stage::ALL[op]);
                }
                7 => {
                    trace.span("wire");
                }
                _ => {
                    // Parent picked from the ids handed out so far (the
                    // root always exists); windows are arbitrary — the
                    // clamp must keep the tree nested regardless.
                    let parent = SpanId((a % (ops.len() as u64 + 1)) as u32);
                    if trace.span_bounds(parent).is_some() {
                        trace.child_span(parent, "phase", a.min(b), a.max(b));
                    }
                }
            }
        }
        prop_assert_eq!(trace.pinned(), pinned);
        let record = trace.finish().expect("a traced request must finish into a record");
        prop_assert!(record.is_well_formed());
        let json = parse_json(&chrome_trace_json(&[record])).expect("valid JSON");
        prop_assert!(!slice_events(&json).is_empty());
    }
}
