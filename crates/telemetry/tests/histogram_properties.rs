//! Concurrency and property tests for the lock-free histogram core.

use kspr_telemetry::{Histogram, HistogramSnapshot, SUBBUCKETS};
use proptest::prelude::*;
use std::sync::Arc;

#[test]
fn concurrent_recorders_lose_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;

    let shared = Arc::new(Histogram::new());
    let partials: Vec<Arc<Histogram>> = (0..THREADS).map(|_| Arc::new(Histogram::new())).collect();

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let shared = Arc::clone(&shared);
            let partial = Arc::clone(&partials[t]);
            std::thread::spawn(move || {
                // A per-thread splitmix stream spanning many octaves.
                let mut state = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1);
                for _ in 0..PER_THREAD {
                    state = state
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(1_442_695_040_888_963_407);
                    let value = state >> (state % 48);
                    shared.record(value);
                    partial.record(value);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("recorder thread");
    }

    let total = THREADS as u64 * PER_THREAD;
    let shared_snap = shared.snapshot();
    assert_eq!(shared_snap.count(), total, "no record was lost to a race");
    assert_eq!(shared_snap.buckets().iter().sum::<u64>(), total);

    // Merging the per-thread snapshots reproduces the shared histogram
    // exactly: same buckets, same sum, same extremes.
    let mut merged = HistogramSnapshot::empty();
    for partial in &partials {
        merged.merge(&partial.snapshot());
    }
    assert_eq!(merged, shared_snap);
}

/// The reference quantile matching the histogram's definition: the smallest
/// value whose rank reaches `ceil(q * n)`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merged_quantiles_bound_the_pooled_stream(
        a in prop::collection::vec(0u64..1 << 40, 1..200),
        b in prop::collection::vec(0u64..1 << 40, 1..200),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        for &v in &a { ha.record(v); }
        for &v in &b { hb.record(v); }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());

        let mut pooled: Vec<u64> = a.iter().chain(&b).copied().collect();
        pooled.sort_unstable();
        prop_assert_eq!(merged.count(), pooled.len() as u64);
        prop_assert_eq!(merged.sum(), pooled.iter().sum::<u64>());
        prop_assert_eq!(merged.min(), pooled[0]);
        prop_assert_eq!(merged.max(), *pooled.last().unwrap());

        for q in [0.5, 0.9, 0.99, 1.0] {
            let truth = exact_quantile(&pooled, q);
            let reported = merged.quantile(q);
            // The reported quantile never undershoots, and overshoots by at
            // most one log-bucket width (1/SUBBUCKETS relative error).
            prop_assert!(reported >= truth, "q={} reported {} < {}", q, reported, truth);
            prop_assert!(
                reported <= truth + truth / SUBBUCKETS + 1,
                "q={} reported {} too far above {}",
                q,
                reported,
                truth
            );
        }
    }

    #[test]
    fn merge_is_commutative_and_exact(
        a in prop::collection::vec(0u64..1 << 52, 0..100),
        b in prop::collection::vec(0u64..1 << 52, 0..100),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let pooled = Histogram::new();
        for &v in &a { ha.record(v); pooled.record(v); }
        for &v in &b { hb.record(v); pooled.record(v); }

        let mut ab = ha.snapshot();
        ab.merge(&hb.snapshot());
        let mut ba = hb.snapshot();
        ba.merge(&ha.snapshot());
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(&ab, &pooled.snapshot());
    }
}
