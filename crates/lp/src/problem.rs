//! A small modelling layer over the raw simplex solver.
//!
//! The kSPR algorithms express everything as linear constraints over the
//! weight vector `w` of the (transformed or original) preference space:
//! record-induced halfspaces `S(r) < S(p)` / `S(r) > S(p)` and the boundary
//! constraints of the space itself.  This module provides:
//!
//! * [`LinearConstraint`] — a single constraint `coeffs · w  (op)  rhs`, where
//!   the relation may be strict (used for feasibility of *open* cells) or
//!   non-strict (used when optimizing score bounds over the cell closure).
//! * [`maximize`] / [`minimize`] — optimize a linear objective over the
//!   closure of the constraint set.
//! * [`interior_point`] — the feasibility test of Section 4.2 of the paper:
//!   decide whether the *open* polyhedron has non-empty interior, and if so
//!   return a witness point strictly inside it (used by the witness-reuse
//!   optimization of Section 4.3.2).

use crate::simplex::{solve_standard_form, solve_standard_form_counted, SimplexOutcome};
use crate::INTERIOR_MARGIN;

/// Relation of a [`LinearConstraint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `coeffs · w ≤ rhs`
    LessEq,
    /// `coeffs · w ≥ rhs`
    GreaterEq,
    /// `coeffs · w < rhs` (strict)
    Less,
    /// `coeffs · w > rhs` (strict)
    Greater,
}

impl Relation {
    /// The non-strict relation with the same direction.
    pub fn closure(self) -> Relation {
        match self {
            Relation::Less | Relation::LessEq => Relation::LessEq,
            Relation::Greater | Relation::GreaterEq => Relation::GreaterEq,
        }
    }

    /// True if the relation is strict.
    pub fn is_strict(self) -> bool {
        matches!(self, Relation::Less | Relation::Greater)
    }
}

/// A single linear constraint `coeffs · w (op) rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearConstraint {
    /// Coefficient per decision variable.
    pub coeffs: Vec<f64>,
    /// Relation between the linear form and `rhs`.
    pub op: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

impl LinearConstraint {
    /// Creates a new constraint.
    pub fn new(coeffs: Vec<f64>, op: Relation, rhs: f64) -> Self {
        Self { coeffs, op, rhs }
    }

    /// Evaluates the linear form at `point`.
    pub fn eval(&self, point: &[f64]) -> f64 {
        self.coeffs.iter().zip(point).map(|(c, x)| c * x).sum()
    }

    /// True iff `point` satisfies the constraint with tolerance `tol`
    /// (strict constraints are required to clear the bound by `tol`).
    pub fn satisfied_by(&self, point: &[f64], tol: f64) -> bool {
        let v = self.eval(point);
        match self.op {
            Relation::LessEq => v <= self.rhs + tol,
            Relation::GreaterEq => v >= self.rhs - tol,
            Relation::Less => v < self.rhs - tol,
            Relation::Greater => v > self.rhs + tol,
        }
    }

    /// Returns this constraint normalized into `a · w ≤ b` form
    /// (strictness is dropped; callers that care about strictness use
    /// [`interior_point`]).
    fn as_leq(&self) -> (Vec<f64>, f64) {
        match self.op.closure() {
            Relation::LessEq => (self.coeffs.clone(), self.rhs),
            Relation::GreaterEq => (self.coeffs.iter().map(|c| -c).collect(), -self.rhs),
            _ => unreachable!("closure() never returns a strict relation"),
        }
    }
}

/// Outcome of an optimization call.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimum exists.
    Optimal {
        /// Optimal point.
        point: Vec<f64>,
        /// Optimal objective value.
        objective: f64,
    },
    /// The (closed) constraint set is empty.
    Infeasible,
    /// The objective is unbounded in the requested direction.
    Unbounded,
}

impl LpOutcome {
    /// The optimal objective value, if any.
    pub fn objective(&self) -> Option<f64> {
        match self {
            LpOutcome::Optimal { objective, .. } => Some(*objective),
            _ => None,
        }
    }

    /// The optimal point, if any.
    pub fn point(&self) -> Option<&[f64]> {
        match self {
            LpOutcome::Optimal { point, .. } => Some(point),
            _ => None,
        }
    }
}

/// A strictly interior feasible point together with its clearance.
#[derive(Debug, Clone, PartialEq)]
pub struct InteriorSolution {
    /// The witness point, strictly inside every strict constraint.
    pub point: Vec<f64>,
    /// How far the witness clears the tightest constraint.
    pub margin: f64,
}

/// Maximizes `objective · w` over the closure of `constraints` with `w ≥ 0`.
///
/// All constraints are interpreted non-strictly (their closure).  Callers are
/// responsible for adding any box/boundary constraints they need; the only
/// implicit constraint is non-negativity of the variables, which matches the
/// preference-space semantics of the paper (`w_i > 0`).
pub fn maximize(objective: &[f64], constraints: &[LinearConstraint], num_vars: usize) -> LpOutcome {
    assert!(
        objective.len() == num_vars,
        "objective length must equal num_vars"
    );
    let mut a = Vec::with_capacity(constraints.len());
    let mut b = Vec::with_capacity(constraints.len());
    for c in constraints {
        assert_eq!(c.coeffs.len(), num_vars, "constraint arity mismatch");
        let (row, rhs) = c.as_leq();
        a.push(row);
        b.push(rhs);
    }
    match solve_standard_form(&a, &b, objective) {
        SimplexOutcome::Optimal { x, objective } => LpOutcome::Optimal {
            point: x,
            objective,
        },
        SimplexOutcome::Infeasible => LpOutcome::Infeasible,
        SimplexOutcome::Unbounded => LpOutcome::Unbounded,
    }
}

/// Minimizes `objective · w` over the closure of `constraints` with `w ≥ 0`.
pub fn minimize(objective: &[f64], constraints: &[LinearConstraint], num_vars: usize) -> LpOutcome {
    let negated: Vec<f64> = objective.iter().map(|c| -c).collect();
    match maximize(&negated, constraints, num_vars) {
        LpOutcome::Optimal { point, objective } => LpOutcome::Optimal {
            point,
            objective: -objective,
        },
        other => other,
    }
}

/// Tests whether the *open* polyhedron described by `constraints` has a
/// non-empty interior, returning a strictly interior witness point if so.
///
/// This is the feasibility test of Section 4.2 of the paper.  Strict and
/// non-strict constraints are both required to hold with a positive margin
/// `t`; the solver maximizes `t` and declares the cell feasible iff the
/// optimal margin exceeds [`INTERIOR_MARGIN`].  The returned witness is used
/// by the CellTree to skip subsequent feasibility tests (Section 4.3.2).
pub fn interior_point(
    constraints: &[LinearConstraint],
    num_vars: usize,
) -> Option<InteriorSolution> {
    interior_point_counted(constraints, num_vars).0
}

/// Like [`interior_point`], additionally returning the number of simplex
/// pivots the feasibility LP performed — the deterministic work measure the
/// engine's phase profiling attributes to its LP solves.
pub fn interior_point_counted(
    constraints: &[LinearConstraint],
    num_vars: usize,
) -> (Option<InteriorSolution>, usize) {
    // Variables: w_0 .. w_{num_vars-1}, t  (all ≥ 0).
    let total_vars = num_vars + 1;
    let mut a = Vec::with_capacity(constraints.len() + 1);
    let mut b = Vec::with_capacity(constraints.len() + 1);
    for c in constraints {
        assert_eq!(c.coeffs.len(), num_vars, "constraint arity mismatch");
        // a·w < rhs  ->  a·w + s t ≤ rhs   where s scales the margin by the
        // constraint norm so that the margin is geometric, not coefficient-
        // dependent.
        let norm: f64 = c
            .coeffs
            .iter()
            .map(|v| v * v)
            .sum::<f64>()
            .sqrt()
            .max(1e-12);
        let (mut row, rhs) = c.as_leq();
        row.push(norm);
        a.push(row);
        b.push(rhs);
    }
    // Keep t bounded so the LP is never unbounded.
    let mut t_bound = vec![0.0; total_vars];
    t_bound[num_vars] = 1.0;
    a.push(t_bound);
    b.push(1.0);

    let mut objective = vec![0.0; total_vars];
    objective[num_vars] = 1.0;

    let (outcome, pivots) = solve_standard_form_counted(&a, &b, &objective);
    let solution = match outcome {
        SimplexOutcome::Optimal { x, objective } if objective > INTERIOR_MARGIN => {
            let point = x[..num_vars].to_vec();
            Some(InteriorSolution {
                point,
                margin: objective,
            })
        }
        _ => None,
    };
    (solution, pivots)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box(d: usize) -> Vec<LinearConstraint> {
        // 0 < w_i < 1 and sum w_i < 1 — the transformed preference space.
        let mut cs = Vec::new();
        for i in 0..d {
            let mut coeffs = vec![0.0; d];
            coeffs[i] = 1.0;
            cs.push(LinearConstraint::new(coeffs.clone(), Relation::Less, 1.0));
            cs.push(LinearConstraint::new(coeffs, Relation::Greater, 0.0));
        }
        cs.push(LinearConstraint::new(vec![1.0; d], Relation::Less, 1.0));
        cs
    }

    #[test]
    fn interior_of_preference_space_exists() {
        for d in 1..=6 {
            let sol = interior_point(&unit_box(d), d).expect("space has interior");
            assert!(sol.margin > 0.0);
            let s: f64 = sol.point.iter().sum();
            assert!(s < 1.0);
            assert!(sol.point.iter().all(|&w| w > 0.0 && w < 1.0));
        }
    }

    #[test]
    fn empty_open_cell_is_detected() {
        // w_0 > 0.5 and w_0 < 0.5 cannot both hold strictly.
        let mut cs = unit_box(2);
        cs.push(LinearConstraint::new(
            vec![1.0, 0.0],
            Relation::Greater,
            0.5,
        ));
        cs.push(LinearConstraint::new(vec![1.0, 0.0], Relation::Less, 0.5));
        assert!(interior_point(&cs, 2).is_none());
    }

    #[test]
    fn degenerate_touching_halfspaces_have_no_interior() {
        // w_0 + w_1 > 1 intersected with the transformed space touches only
        // on the diagonal boundary — zero extent.
        let mut cs = unit_box(2);
        cs.push(LinearConstraint::new(
            vec![1.0, 1.0],
            Relation::Greater,
            1.0,
        ));
        assert!(interior_point(&cs, 2).is_none());
    }

    #[test]
    fn witness_point_satisfies_all_constraints() {
        let mut cs = unit_box(3);
        cs.push(LinearConstraint::new(
            vec![1.0, -1.0, 0.0],
            Relation::Less,
            0.2,
        ));
        cs.push(LinearConstraint::new(
            vec![0.0, 1.0, -2.0],
            Relation::Greater,
            -0.4,
        ));
        let sol = interior_point(&cs, 3).expect("feasible");
        for c in &cs {
            assert!(c.satisfied_by(&sol.point, 0.0), "witness violates {c:?}");
        }
    }

    #[test]
    fn maximize_score_over_cell() {
        // maximize w_0 + 2 w_1 over the transformed 2-d space: optimum at w = (0, 1).
        let cs = unit_box(2);
        let out = maximize(&[1.0, 2.0], &cs, 2);
        let obj = out.objective().expect("optimal");
        assert!((obj - 2.0).abs() < 1e-6);
    }

    #[test]
    fn minimize_matches_negated_maximize() {
        let cs = unit_box(3);
        let min = minimize(&[1.0, 1.0, 1.0], &cs, 3).objective().unwrap();
        assert!(min.abs() < 1e-6, "minimum of the sum over the simplex is 0");
    }

    #[test]
    fn infeasible_closed_system_reported() {
        let cs = vec![
            LinearConstraint::new(vec![1.0], Relation::LessEq, 1.0),
            LinearConstraint::new(vec![1.0], Relation::GreaterEq, 2.0),
        ];
        assert_eq!(maximize(&[1.0], &cs, 1), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_objective_reported() {
        // Only a lower bound on w_0: maximizing it is unbounded, minimizing
        // is not.
        let cs = vec![LinearConstraint::new(vec![1.0], Relation::GreaterEq, 2.0)];
        assert_eq!(maximize(&[1.0], &cs, 1), LpOutcome::Unbounded);
        let min = minimize(&[1.0], &cs, 1).objective().expect("bounded below");
        assert!((min - 2.0).abs() < 1e-6);
    }

    #[test]
    fn single_point_cell_optimizes_but_has_no_interior() {
        // The closed cell {w_0 = 0.3} is a single point: optimization over
        // the closure works, the open cell has no interior.
        let cs = vec![
            LinearConstraint::new(vec![1.0], Relation::LessEq, 0.3),
            LinearConstraint::new(vec![1.0], Relation::GreaterEq, 0.3),
        ];
        let max = maximize(&[1.0], &cs, 1).objective().expect("optimal");
        assert!((max - 0.3).abs() < 1e-6);
        let strict = vec![
            LinearConstraint::new(vec![1.0], Relation::Less, 0.3),
            LinearConstraint::new(vec![1.0], Relation::Greater, 0.3),
        ];
        assert!(interior_point(&strict, 1).is_none());
    }

    #[test]
    fn sliver_cell_below_margin_is_rejected() {
        // An open slab of width well below INTERIOR_MARGIN: numerically a
        // degenerate cell, must be rejected by the margin test.
        let width = crate::INTERIOR_MARGIN / 10.0;
        let cs = vec![
            LinearConstraint::new(vec![1.0], Relation::Greater, 0.5),
            LinearConstraint::new(vec![1.0], Relation::Less, 0.5 + width),
        ];
        assert!(interior_point(&cs, 1).is_none());
    }

    #[test]
    fn interior_point_ignores_redundant_constraints() {
        let mut cs = unit_box(2);
        // The same halfspace three times must not shrink the margin to zero.
        for _ in 0..3 {
            cs.push(LinearConstraint::new(vec![1.0, 0.0], Relation::Less, 0.6));
        }
        let sol = interior_point(&cs, 2).expect("feasible");
        assert!(sol.point[0] < 0.6);
        assert!(sol.margin > 0.0);
    }

    #[test]
    fn relation_closure_and_strictness() {
        assert_eq!(Relation::Less.closure(), Relation::LessEq);
        assert_eq!(Relation::Greater.closure(), Relation::GreaterEq);
        assert!(Relation::Less.is_strict());
        assert!(!Relation::LessEq.is_strict());
    }

    #[test]
    fn constraint_eval_and_satisfaction() {
        let c = LinearConstraint::new(vec![2.0, -1.0], Relation::LessEq, 1.0);
        assert!((c.eval(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!(c.satisfied_by(&[1.0, 1.0], 1e-9));
        assert!(!c.satisfied_by(&[1.0, 0.0], 1e-9));
    }
}
