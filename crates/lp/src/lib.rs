//! Dense linear-programming solver used throughout the kSPR reproduction.
//!
//! The original paper relies on the `lp_solve` C library for two tasks:
//!
//! 1. **Feasibility tests** on the implicit cell representation of the
//!    `CellTree` (Section 4.2 of the paper): "is the intersection of these
//!    open halfspaces non-empty?".
//! 2. **Score-bound optimization** for the look-ahead techniques of LP-CTA
//!    (Section 6): minimize / maximize a linear score subject to the
//!    constraints that define a cell.
//!
//! Both tasks involve tiny problems — at most `d - 1 ≤ 6` decision variables
//! and, thanks to the inconsequential-halfspace elimination of Lemma 2,
//! usually a few dozen constraints.  A dense two-phase simplex with Bland's
//! anti-cycling rule is therefore more than adequate, and keeping the solver
//! in-tree removes the external C dependency.
//!
//! # Overview
//!
//! * [`simplex`] — the raw tableau solver for problems in the standard form
//!   `maximize c·x  subject to  A x ≤ b, x ≥ 0` (with `b` of arbitrary sign).
//! * [`problem`] — a small modelling layer: [`LinearConstraint`]s with
//!   strict / non-strict relations, maximization / minimization objectives,
//!   and the *interior-point* feasibility test that the kSPR algorithms use to
//!   decide whether a cell has non-zero extent.
//!
//! # Example
//!
//! ```
//! use kspr_lp::{LinearConstraint, Relation, maximize, LpOutcome};
//!
//! // maximize x0 + x1 subject to x0 + 2 x1 <= 4, 3 x0 + x1 <= 6, x >= 0
//! let constraints = vec![
//!     LinearConstraint::new(vec![1.0, 2.0], Relation::LessEq, 4.0),
//!     LinearConstraint::new(vec![3.0, 1.0], Relation::LessEq, 6.0),
//! ];
//! match maximize(&[1.0, 1.0], &constraints, 2) {
//!     LpOutcome::Optimal { objective, .. } => assert!((objective - 2.8).abs() < 1e-9),
//!     other => panic!("unexpected outcome {other:?}"),
//! }
//! ```

pub mod problem;
pub mod simplex;

pub use problem::{
    interior_point, interior_point_counted, maximize, minimize, InteriorSolution, LinearConstraint,
    LpOutcome, Relation,
};
pub use simplex::{solve_standard_form, solve_standard_form_counted, SimplexOutcome};

/// Numerical tolerance shared by the solver and its callers.
///
/// Coordinates in the preference space are all within `[0, 1]` and the data
/// attributes are normalized by the generators, so a fixed absolute tolerance
/// is appropriate.
pub const EPSILON: f64 = 1e-9;

/// Slightly looser tolerance used when classifying strict inequalities:
/// a cell is considered to have interior only if a point exists that clears
/// every bounding hyperplane by at least this margin.
pub const INTERIOR_MARGIN: f64 = 1e-7;
