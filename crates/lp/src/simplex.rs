//! Dense two-phase simplex for problems in standard inequality form.
//!
//! The solver targets the very small instances produced by the kSPR
//! algorithms (a handful of variables, tens of constraints), so it favours
//! clarity and robustness over asymptotic sophistication: a full dense
//! tableau, explicit artificial variables, and Bland's rule to rule out
//! cycling.

use crate::EPSILON;

/// Result of a simplex run.
#[derive(Debug, Clone, PartialEq)]
pub enum SimplexOutcome {
    /// An optimal solution was found.
    Optimal {
        /// Values of the original decision variables.
        x: Vec<f64>,
        /// Objective value at the optimum.
        objective: f64,
    },
    /// The constraint set admits no feasible point.
    Infeasible,
    /// The objective is unbounded above over the feasible region.
    Unbounded,
}

impl SimplexOutcome {
    /// Returns the optimal point if the run terminated with an optimum.
    pub fn point(&self) -> Option<&[f64]> {
        match self {
            SimplexOutcome::Optimal { x, .. } => Some(x),
            _ => None,
        }
    }

    /// Returns the optimal objective value if the run terminated with an optimum.
    pub fn objective(&self) -> Option<f64> {
        match self {
            SimplexOutcome::Optimal { objective, .. } => Some(*objective),
            _ => None,
        }
    }

    /// True iff the problem was proven infeasible.
    pub fn is_infeasible(&self) -> bool {
        matches!(self, SimplexOutcome::Infeasible)
    }
}

/// Internal dense tableau.
struct Tableau {
    /// `rows x cols` coefficient matrix; the last column is the right-hand side.
    data: Vec<Vec<f64>>,
    /// Index of the basic variable for each row.
    basis: Vec<usize>,
    /// Objective row (reduced costs); last entry is the negated objective value.
    obj: Vec<f64>,
    /// Number of structural + slack + artificial columns (excluding RHS).
    num_cols: usize,
    /// Columns that must never (re-)enter the basis (artificials in phase 2).
    banned: Vec<bool>,
    /// Pivots performed over the tableau's lifetime (both phases), the
    /// solver's deterministic work measure.
    pivots: usize,
}

impl Tableau {
    fn rhs(&self, row: usize) -> f64 {
        let c = self.data[row].len() - 1;
        self.data[row][c]
    }

    /// Performs a pivot on `(row, col)`, updating the tableau and objective row.
    fn pivot(&mut self, row: usize, col: usize) {
        self.pivots += 1;
        let pivot_val = self.data[row][col];
        debug_assert!(pivot_val.abs() > EPSILON, "pivot element too small");
        let inv = 1.0 / pivot_val;
        for v in self.data[row].iter_mut() {
            *v *= inv;
        }
        let pivot_row = self.data[row].clone();
        for (r, data_row) in self.data.iter_mut().enumerate() {
            if r == row {
                continue;
            }
            let factor = data_row[col];
            if factor.abs() > 0.0 {
                for (v, pv) in data_row.iter_mut().zip(pivot_row.iter()) {
                    *v -= factor * pv;
                }
            }
        }
        let factor = self.obj[col];
        if factor.abs() > 0.0 {
            for (v, pv) in self.obj.iter_mut().zip(pivot_row.iter()) {
                *v -= factor * pv;
            }
        }
        self.basis[row] = col;
    }

    /// Runs simplex iterations until optimality or unboundedness.
    ///
    /// The objective row stores reduced costs for a *maximization*; a column
    /// with a positive reduced cost improves the objective. Bland's rule
    /// (smallest eligible index for both the entering and the leaving
    /// variable) guarantees termination.
    fn iterate(&mut self) -> Result<(), Unbounded> {
        // A generous iteration cap guards against numerical stalls; with
        // Bland's rule it should never be hit for well-posed inputs.
        let max_iters = 200 * (self.num_cols + self.data.len() + 16);
        for _ in 0..max_iters {
            let entering = (0..self.num_cols).find(|&c| !self.banned[c] && self.obj[c] > EPSILON);
            let Some(col) = entering else {
                return Ok(());
            };
            let mut leaving: Option<(usize, f64)> = None;
            for row in 0..self.data.len() {
                let coeff = self.data[row][col];
                if coeff > EPSILON {
                    let ratio = self.rhs(row) / coeff;
                    match leaving {
                        None => leaving = Some((row, ratio)),
                        Some((best_row, best_ratio)) => {
                            // Bland: break ties on the basic-variable index.
                            if ratio < best_ratio - EPSILON
                                || (ratio < best_ratio + EPSILON
                                    && self.basis[row] < self.basis[best_row])
                            {
                                leaving = Some((row, ratio));
                            }
                        }
                    }
                }
            }
            match leaving {
                Some((row, _)) => self.pivot(row, col),
                None => return Err(Unbounded),
            }
        }
        // Numerical stall: treat as optimal at the current (feasible) point.
        Ok(())
    }
}

struct Unbounded;

/// Solves `maximize c·x  subject to  A x ≤ b, x ≥ 0`.
///
/// * `a` — constraint matrix, one inner `Vec` per row, each of length `c.len()`.
/// * `b` — right-hand sides (may be negative; a phase-1 run with artificial
///   variables establishes feasibility in that case).
/// * `c` — objective coefficients.
///
/// # Panics
///
/// Panics if the rows of `a` and `b` have mismatched lengths, or if any row
/// of `a` does not have exactly `c.len()` entries.
pub fn solve_standard_form(a: &[Vec<f64>], b: &[f64], c: &[f64]) -> SimplexOutcome {
    solve_standard_form_counted(a, b, c).0
}

/// Like [`solve_standard_form`], additionally returning the number of
/// simplex pivots performed (both phases, including the basis cleanup that
/// drives lingering artificials out).  Pivots are a pure function of the
/// instance — Bland's rule is deterministic — which makes the count a
/// schedule-independent work measure for engine profiling.
pub fn solve_standard_form_counted(
    a: &[Vec<f64>],
    b: &[f64],
    c: &[f64],
) -> (SimplexOutcome, usize) {
    assert_eq!(a.len(), b.len(), "matrix rows must match rhs length");
    for row in a {
        assert_eq!(
            row.len(),
            c.len(),
            "every row must have one coeff per variable"
        );
    }
    let m = a.len();
    let n = c.len();

    // Column layout: [structural 0..n) [slack n..n+m) [artificial ...] [rhs]
    let mut needs_artificial = vec![false; m];
    let mut num_artificial = 0usize;
    for (i, &bi) in b.iter().enumerate() {
        if bi < -EPSILON {
            needs_artificial[i] = true;
            num_artificial += 1;
        }
    }
    let num_cols = n + m + num_artificial;

    let mut data = vec![vec![0.0; num_cols + 1]; m];
    let mut basis = vec![0usize; m];
    let mut artificial_cols = Vec::with_capacity(num_artificial);
    let mut next_artificial = n + m;
    for i in 0..m {
        let sign = if needs_artificial[i] { -1.0 } else { 1.0 };
        for j in 0..n {
            data[i][j] = sign * a[i][j];
        }
        data[i][n + i] = sign; // slack (negated when the row was flipped)
        data[i][num_cols] = sign * b[i];
        if needs_artificial[i] {
            data[i][next_artificial] = 1.0;
            basis[i] = next_artificial;
            artificial_cols.push(next_artificial);
            next_artificial += 1;
        } else {
            basis[i] = n + i;
        }
    }

    let mut tableau = Tableau {
        data,
        basis,
        obj: vec![0.0; num_cols + 1],
        num_cols,
        banned: vec![false; num_cols],
        pivots: 0,
    };

    // ---- Phase 1: drive the artificial variables to zero -------------------
    if num_artificial > 0 {
        // maximize -(sum of artificials)  ==  minimize sum of artificials
        for &col in &artificial_cols {
            tableau.obj[col] = -1.0;
        }
        // Price out the basic artificial variables.
        for row in 0..m {
            if artificial_cols.contains(&tableau.basis[row]) {
                let row_data = tableau.data[row].clone();
                for (v, rv) in tableau.obj.iter_mut().zip(row_data.iter()) {
                    *v += rv;
                }
            }
        }
        if tableau.iterate().is_err() {
            // Phase 1 objective is bounded by construction; reaching this
            // branch indicates numerical trouble, treat as infeasible.
            return (SimplexOutcome::Infeasible, tableau.pivots);
        }
        // With the update rule used by `pivot`, the last entry of the
        // objective row holds the *negated* objective value; for the phase-1
        // objective (maximize -Σ artificials) it therefore equals Σ artificials.
        let artificial_sum = tableau.obj[num_cols];
        if artificial_sum > 1e-7 {
            return (SimplexOutcome::Infeasible, tableau.pivots);
        }
        // Pivot any artificial variables that remain basic (at value zero)
        // out of the basis, or drop their (redundant) rows.
        let mut row = 0;
        while row < tableau.data.len() {
            if artificial_cols.contains(&tableau.basis[row]) {
                let pivot_col = (0..n + m).find(|&cidx| tableau.data[row][cidx].abs() > 1e-7);
                match pivot_col {
                    Some(cidx) => tableau.pivot(row, cidx),
                    None => {
                        tableau.data.remove(row);
                        tableau.basis.remove(row);
                        continue;
                    }
                }
            }
            row += 1;
        }
        for &col in &artificial_cols {
            tableau.banned[col] = true;
        }
    }

    // ---- Phase 2: optimize the real objective ------------------------------
    tableau.obj = vec![0.0; num_cols + 1];
    tableau.obj[..n].copy_from_slice(c);
    // Price out basic variables so reduced costs of the basis are zero.
    for row in 0..tableau.data.len() {
        let basic = tableau.basis[row];
        let coeff = tableau.obj[basic];
        if coeff.abs() > 0.0 {
            let row_data = tableau.data[row].clone();
            for (v, rv) in tableau.obj.iter_mut().zip(row_data.iter()) {
                *v -= coeff * rv;
            }
        }
    }
    if tableau.iterate().is_err() {
        return (SimplexOutcome::Unbounded, tableau.pivots);
    }

    let mut x = vec![0.0; n];
    for (row, &basic) in tableau.basis.iter().enumerate() {
        if basic < n {
            x[basic] = tableau.rhs(row);
        }
    }
    let objective = x.iter().zip(c.iter()).map(|(xi, ci)| xi * ci).sum();
    (SimplexOutcome::Optimal { x, objective }, tableau.pivots)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn simple_two_variable_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18
        let a = vec![vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]];
        let b = vec![4.0, 12.0, 18.0];
        let c = vec![3.0, 5.0];
        let out = solve_standard_form(&a, &b, &c);
        let obj = out.objective().expect("optimal");
        assert_close(obj, 36.0);
        let x = out.point().unwrap();
        assert_close(x[0], 2.0);
        assert_close(x[1], 6.0);
    }

    #[test]
    fn negative_rhs_requires_phase_one() {
        // max x + y s.t. -x - y <= -1 (i.e. x + y >= 1), x + y <= 3
        let a = vec![vec![-1.0, -1.0], vec![1.0, 1.0]];
        let b = vec![-1.0, 3.0];
        let c = vec![1.0, 1.0];
        let out = solve_standard_form(&a, &b, &c);
        assert_close(out.objective().expect("optimal"), 3.0);
    }

    #[test]
    fn detects_infeasibility() {
        // x <= 1 and x >= 2 simultaneously.
        let a = vec![vec![1.0], vec![-1.0]];
        let b = vec![1.0, -2.0];
        let c = vec![1.0];
        assert!(solve_standard_form(&a, &b, &c).is_infeasible());
    }

    #[test]
    fn detects_unboundedness() {
        // max x with only x >= 1.
        let a = vec![vec![-1.0]];
        let b = vec![-1.0];
        let c = vec![1.0];
        assert_eq!(solve_standard_form(&a, &b, &c), SimplexOutcome::Unbounded);
    }

    #[test]
    fn degenerate_constraints_do_not_cycle() {
        // Classic Beale-like degeneracy; Bland's rule must terminate.
        let a = vec![
            vec![0.25, -8.0, -1.0, 9.0],
            vec![0.5, -12.0, -0.5, 3.0],
            vec![0.0, 0.0, 1.0, 0.0],
        ];
        let b = vec![0.0, 0.0, 1.0];
        let c = vec![0.75, -20.0, 0.5, -6.0];
        let out = solve_standard_form(&a, &b, &c);
        assert_close(out.objective().expect("optimal"), 1.25);
    }

    #[test]
    fn zero_objective_returns_feasible_point() {
        let a = vec![vec![1.0, 1.0]];
        let b = vec![1.0];
        let c = vec![0.0, 0.0];
        let out = solve_standard_form(&a, &b, &c);
        let x = out.point().expect("feasible").to_vec();
        assert!(x[0] + x[1] <= 1.0 + 1e-9);
        assert!(x[0] >= -1e-9 && x[1] >= -1e-9);
    }

    #[test]
    fn equality_encoded_as_two_inequalities() {
        // x + y = 1 encoded as <= and >=; maximize x.
        let a = vec![vec![1.0, 1.0], vec![-1.0, -1.0]];
        let b = vec![1.0, -1.0];
        let c = vec![1.0, 0.0];
        let out = solve_standard_form(&a, &b, &c);
        assert_close(out.objective().expect("optimal"), 1.0);
    }

    #[test]
    fn redundant_rows_are_tolerated() {
        let a = vec![vec![1.0, 0.0], vec![1.0, 0.0], vec![-1.0, 0.0]];
        let b = vec![2.0, 2.0, -1.0];
        let c = vec![1.0, 1.0];
        // y is unconstrained above -> unbounded.
        assert_eq!(solve_standard_form(&a, &b, &c), SimplexOutcome::Unbounded);
    }

    #[test]
    fn contradictory_equalities_are_infeasible() {
        // x + y = 1 and x + y = 2, each encoded as a <=/>= pair.
        let a = vec![
            vec![1.0, 1.0],
            vec![-1.0, -1.0],
            vec![1.0, 1.0],
            vec![-1.0, -1.0],
        ];
        let b = vec![1.0, -1.0, 2.0, -2.0];
        let c = vec![1.0, 0.0];
        assert!(solve_standard_form(&a, &b, &c).is_infeasible());
    }

    #[test]
    fn infeasible_beats_unbounded_direction() {
        // The objective direction is unbounded over x >= 0, but the
        // constraints are contradictory: infeasibility must be detected in
        // phase 1, before the unbounded direction can matter.
        let a = vec![vec![-1.0, 0.0], vec![1.0, 0.0]];
        let b = vec![-3.0, 1.0]; // x >= 3 and x <= 1
        let c = vec![0.0, 1.0]; // maximize the unconstrained y
        assert!(solve_standard_form(&a, &b, &c).is_infeasible());
    }

    #[test]
    fn degenerate_vertex_with_many_tight_constraints() {
        // Four constraints all tight at the optimum (2, 0): heavy degeneracy
        // in the ratio test; Bland's rule must still terminate at the right
        // optimum.
        let a = vec![
            vec![1.0, 1.0],
            vec![1.0, 2.0],
            vec![1.0, 3.0],
            vec![1.0, -1.0],
        ];
        let b = vec![2.0, 2.0, 2.0, 2.0];
        let c = vec![1.0, 0.0];
        let out = solve_standard_form(&a, &b, &c);
        assert_close(out.objective().expect("optimal"), 2.0);
        let x = out.point().unwrap();
        assert_close(x[0], 2.0);
        assert_close(x[1], 0.0);
    }

    #[test]
    fn degenerate_zero_rhs_rows_terminate() {
        // All right-hand sides zero: the origin is the only feasible point of
        // x + y <= 0 with x, y >= 0, and every pivot is degenerate.
        let a = vec![vec![1.0, 1.0], vec![1.0, -1.0], vec![-1.0, 1.0]];
        let b = vec![0.0, 0.0, 0.0];
        let c = vec![5.0, 3.0];
        let out = solve_standard_form(&a, &b, &c);
        assert_close(out.objective().expect("optimal"), 0.0);
    }

    #[test]
    fn unbounded_after_nontrivial_phase_one() {
        // Phase 1 is needed (negative rhs) and succeeds; phase 2 is then
        // unbounded along y.
        let a = vec![vec![-1.0, 0.0]];
        let b = vec![-2.0]; // x >= 2
        let c = vec![0.0, 1.0];
        assert_eq!(solve_standard_form(&a, &b, &c), SimplexOutcome::Unbounded);
    }

    #[test]
    fn fixed_point_feasible_region() {
        // x = 1.5 exactly (pair of inequalities); any objective is bounded.
        let a = vec![vec![1.0], vec![-1.0]];
        let b = vec![1.5, -1.5];
        let out = solve_standard_form(&a, &b, &[-7.0]);
        assert_close(out.objective().expect("optimal"), -10.5);
        assert_close(out.point().unwrap()[0], 1.5);
    }

    #[test]
    fn no_constraints_bounded_only_by_nonnegativity() {
        // max -x - y over x, y >= 0: optimum at the origin.
        let out = solve_standard_form(&[], &[], &[-1.0, -1.0]);
        assert_close(out.objective().expect("optimal"), 0.0);
        // ... while max x over the same region is unbounded.
        assert_eq!(
            solve_standard_form(&[], &[], &[1.0]),
            SimplexOutcome::Unbounded
        );
    }

    #[test]
    fn pivot_counts_are_deterministic_and_meaningful() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]];
        let b = vec![4.0, 12.0, 18.0];
        let c = vec![3.0, 5.0];
        let (out, pivots) = solve_standard_form_counted(&a, &b, &c);
        assert_close(out.objective().expect("optimal"), 36.0);
        assert!(pivots > 0, "reaching the optimum from the origin pivots");
        // Same instance, same count — Bland's rule is deterministic.
        assert_eq!(solve_standard_form_counted(&a, &b, &c).1, pivots);
        // The counted and plain entry points agree on the outcome.
        assert_eq!(solve_standard_form(&a, &b, &c), out);
        // An already-optimal origin needs no pivots.
        let (out, pivots) = solve_standard_form_counted(&[], &[], &[-1.0]);
        assert_close(out.objective().expect("optimal"), 0.0);
        assert_eq!(pivots, 0);
    }

    #[test]
    fn many_constraints_small_dimension() {
        // Random-ish band of constraints around the unit square; optimum on boundary.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..50 {
            let t = i as f64 / 50.0;
            a.push(vec![t, 1.0 - t]);
            b.push(1.0);
        }
        let c = vec![1.0, 1.0];
        let out = solve_standard_form(&a, &b, &c);
        // The binding constraints t*x + (1-t)*y <= 1 for t in {0,1} cap x and y at 1...
        // but intermediate ones cap the sum; optimum is 2 at corners excluded, so <= 2.
        let obj = out.objective().expect("optimal");
        assert!(obj <= 2.0 + 1e-6);
        assert!(obj >= 1.0 - 1e-6);
    }
}
